"""Iterative boundary refinement across the segment graph.

The spanning-forest boundary model (:mod:`.boundary`) can only carry a
pairwise joint when some single upstream segment knows it -- two
boundary lines owned by *different* segments always cross the cut
independently, and that is exactly the error source the paper reports
for its segmented benchmarks.

Refinement closes that gap with *glue estimators*.  At compile time
(``refine > 0``) the boundary forest of every segment is augmented with
cross-provider edges (:func:`augment_boundary_forest`); each such edge
gets a small **glue cone** -- the union of the two lines' truncated
fanin cones -- compiled once into an exact support-enumeration segment
(:class:`~repro.core.enumeration.EnumerationSegment`).  At estimate
time, after the ordinary forward pass, the refinement loop:

1. re-evaluates every glue cone against the *current* published
   marginals (its frontier lines carry the latest ``known`` values),
   calibrates the resulting 4x4 joint to the published marginals by
   iterative proportional fitting, and turns it into a
   ``P(child | parent)`` boundary conditional;
2. re-propagates every segment whose boundary factors or boundary
   input marginals changed -- cheap, because only input CPDs change,
   so the PR 1 dirty-clique machinery repropagates a fraction of each
   junction tree -- cascading dirtiness down the segment DAG;
3. repeats until the maximum boundary-belief delta drops below
   ``refine_tol`` or ``max_iters`` is reached.

A fixed point exists because the circuit DAG is feed-forward: glue
frontier marginals converge as their owners converge, so deltas
attenuate monotonically in practice (oscillation is possible only
through the marginal-calibration feedback, and is bounded by
``max_iters``; see DESIGN.md section 14).  Per-iteration progress is
observable through the ``segmented.refine`` /
``segmented.refine.iteration`` spans and the ``seg.refine.iterations``
/ ``seg.refine.delta`` gauges.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.netlist import Circuit
from repro.core.inputs import InputModel
from repro.core.states import N_STATES
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

from repro.core.segments.boundary import FixedMarginalInputs, SegmentInputs
from repro.core.segments.partition import (
    SegmentRegistry,
    cone_overlap,
    provider_has_joint,
)

__all__ = [
    "BoundaryRefiner",
    "GlueEdge",
    "augment_boundary_forest",
    "calibrate_joint",
    "plan_glue_cone",
]

#: Input budget of one glue cone: ``4^GLUE_MAX_INPUTS`` support rows.
GLUE_MAX_INPUTS = 7
#: Gate budget of one glue cone (enumeration cost is rows x gates).
GLUE_MAX_GATES = 192
#: Backward-expansion depth limit when growing a glue cone.
GLUE_MAX_DEPTH = 10
#: Cap on glue edges grafted onto one segment's boundary forest.
GLUE_EDGE_LIMIT = 16


def plan_glue_cone(
    circuit: Circuit,
    parent: str,
    child: str,
    max_inputs: int = GLUE_MAX_INPUTS,
    max_gates: int = GLUE_MAX_GATES,
    max_depth: int = GLUE_MAX_DEPTH,
) -> Optional[Tuple[str, ...]]:
    """Gate-output lines of the glue cone for a boundary pair, or None.

    Starting from the two lines' driving gates, whole backward levels
    are folded in while the cone's *input* count stays within
    ``max_inputs`` (enumeration cost is ``4^inputs``) and its gate
    count within ``max_gates``.  The deeper the cone, the more shared
    ancestry -- hence cross-cut correlation -- it recovers exactly.
    """

    def frontier_of(lines: set) -> set:
        sources = set()
        for line in lines:
            for src in circuit.driver(line).inputs:
                if src not in lines:
                    sources.add(src)
        return sources

    lines = {parent, child}
    frontier = frontier_of(lines)
    if len(frontier) > max_inputs:
        return None
    for _ in range(max_depth):
        expandable = {ln for ln in frontier if circuit.driver(ln) is not None}
        if not expandable:
            break
        candidate = lines | expandable
        if len(candidate) > max_gates:
            break
        new_frontier = frontier_of(candidate)
        if len(new_frontier) > max_inputs:
            break
        lines = candidate
        frontier = new_frontier
    return tuple(sorted(lines))


def augment_boundary_forest(
    circuit: Circuit,
    inputs: Sequence[str],
    registry: SegmentRegistry,
    cone_cache: Dict[str, frozenset],
    max_input_states: int = N_STATES ** GLUE_MAX_INPUTS,
) -> Tuple[Dict[str, str], frozenset, Dict[str, Tuple[str, ...]]]:
    """Boundary forest with cross-provider glue edges grafted on.

    The *live* spanning forest -- same-provider pairs whose joint a
    single upstream segment can answer -- is built first, exactly as in
    :func:`~repro.core.segments.partition.boundary_forest`, and every
    live edge is kept: a live joint is strictly better information than
    a glue approximation, and preserving the live forest means the base
    pass (before any refinement iteration) matches the ``refine=0``
    scheme.  Glue edges are then grafted *between* live components
    (Kruskal order: largest cone overlap first), each carrying a
    feasible glue-cone plan; a glue edge therefore connects exactly the
    pairs that previously crossed the cut independently.  Returns
    ``(parent_of, glue_children, glue_plans)``; with no feasible glue
    candidates this degrades to the plain same-provider forest.
    """
    import networkx as nx

    max_inputs = int(np.log(max_input_states) / np.log(N_STATES))
    provided: List[str] = []
    provider_of_line: Dict[str, object] = {}
    for line in inputs:
        provider = registry.provider_of(line)
        if provider is not None:
            provided.append(line)
            provider_of_line[line] = provider

    live = nx.Graph()
    for a, b in itertools.combinations(provided, 2):
        if provider_of_line[a] is not provider_of_line[b]:
            continue
        if not provider_has_joint(provider_of_line[a], a, b):
            continue
        weight = cone_overlap(circuit, a, b, cone_cache)
        if weight > 0:
            live.add_edge(a, b, weight=weight)

    forest = nx.Graph()
    forest.add_nodes_from(provided)
    forest.add_edges_from(nx.maximum_spanning_edges(live, data=False))

    candidates: List[Tuple[int, str, str]] = []
    for a, b in itertools.combinations(provided, 2):
        if live.has_edge(a, b):
            continue
        weight = cone_overlap(circuit, a, b, cone_cache)
        if weight > 0:
            candidates.append((weight, a, b))
    candidates.sort(key=lambda t: (-t[0], t[1], t[2]))

    component: Dict[str, int] = {}
    for idx, members in enumerate(nx.connected_components(forest)):
        for line in members:
            component[line] = idx
    glue_pairs: Dict[frozenset, Tuple[str, ...]] = {}
    budget = GLUE_EDGE_LIMIT
    for weight, a, b in candidates:
        if budget <= 0:
            break
        if component[a] == component[b]:
            continue
        plan = plan_glue_cone(circuit, a, b, max_inputs=max_inputs)
        if plan is None:
            continue
        forest.add_edge(a, b)
        merged, absorbed = component[a], component[b]
        for line, idx in component.items():
            if idx == absorbed:
                component[line] = merged
        glue_pairs[frozenset((a, b))] = plan
        budget -= 1

    parent_of: Dict[str, str] = {}
    glue_children: set = set()
    glue_plans: Dict[str, Tuple[str, ...]] = {}
    for members in nx.connected_components(forest):
        root = next(iter(members))
        for parent, child in nx.bfs_edges(forest, root):
            parent_of[child] = parent
            plan = glue_pairs.get(frozenset((parent, child)))
            if plan is not None:
                glue_children.add(child)
                glue_plans[child] = plan
    return parent_of, frozenset(glue_children), glue_plans


def calibrate_joint(
    joint: np.ndarray,
    row_marginal: np.ndarray,
    col_marginal: np.ndarray,
    iters: int = 32,
    tol: float = 1e-12,
) -> np.ndarray:
    """IPF-calibrate a 4x4 joint to the published marginals.

    The glue cone's joint carries the *correlation structure* of the
    pair, but its marginals reflect the cone's truncated view of the
    circuit; the published marginals from full segment propagation are
    strictly better.  Iterative proportional fitting keeps the cone's
    odds ratios while matching both marginals.  A tiny independent
    floor ensures states the marginals support are reachable.
    """
    row_marginal = np.asarray(row_marginal, dtype=np.float64)
    col_marginal = np.asarray(col_marginal, dtype=np.float64)
    fitted = np.asarray(joint, dtype=np.float64) + 1e-12 * np.outer(
        np.maximum(row_marginal, 1e-9), np.maximum(col_marginal, 1e-9)
    )
    fitted /= fitted.sum()
    for _ in range(iters):
        rows = fitted.sum(axis=1)
        fitted *= np.where(rows > 0, row_marginal / np.maximum(rows, 1e-300), 1.0)[
            :, None
        ]
        cols = fitted.sum(axis=0)
        fitted *= np.where(cols > 0, col_marginal / np.maximum(cols, 1e-300), 1.0)[
            None, :
        ]
        if np.abs(fitted.sum(axis=1) - row_marginal).max() <= tol:
            break
    return fitted


@dataclass
class GlueEdge:
    """One cross-provider boundary-forest edge and its glue estimator."""

    index: int  # consumer segment whose forest carries the edge
    parent: str
    child: str
    estimator: object  # EnumerationSegment over the glue cone
    primary: Tuple[str, ...]  # cone inputs that are circuit primaries
    internal: Tuple[str, ...]  # cone inputs published by segments


class BoundaryRefiner:
    """Holds every glue edge and evaluates their boundary conditionals.

    Built once at compile time (``refine > 0``); serialized with the
    estimator, so loaded artifacts refine without recompiling.
    """

    def __init__(self, edges: List[GlueEdge]):
        self.edges = edges
        self.by_consumer: Dict[int, List[GlueEdge]] = {}
        for edge in edges:
            self.by_consumer.setdefault(edge.index, []).append(edge)

    def __len__(self) -> int:
        return len(self.edges)

    @staticmethod
    def build(estimator) -> "BoundaryRefiner":
        """Compile the glue cones planned during partitioning."""
        from repro.core.enumeration import EnumerationSegment

        circuit = estimator.circuit
        edges: List[GlueEdge] = []
        for index, node in enumerate(estimator.graph.nodes):
            for child in sorted(node.glue_children):
                parent = node.parent_of[child]
                plan = node.glue_plans[child]
                sources = {
                    src
                    for line in plan
                    for src in circuit.driver(line).inputs
                }
                cone = circuit.subcircuit(
                    sorted(set(plan) | sources, key=estimator._position.__getitem__),
                    name=f"{circuit.name}.glue{index}.{child}",
                )
                primary = tuple(
                    ln for ln in cone.inputs if circuit.driver(ln) is None
                )
                internal = tuple(
                    ln for ln in cone.inputs if circuit.driver(ln) is not None
                )
                uniform = {ln: np.full(N_STATES, 0.25) for ln in internal}
                glue_est = EnumerationSegment(
                    cone,
                    SegmentInputs(
                        estimator.input_model, primary, FixedMarginalInputs(uniform)
                    ),
                    max_input_states=estimator.glue_states,
                    keep_lines={parent, child},
                )
                edges.append(
                    GlueEdge(index, parent, child, glue_est, primary, internal)
                )
        return BoundaryRefiner(edges)

    # ------------------------------------------------------------------

    def conditional(
        self,
        edge: GlueEdge,
        known: Dict[str, np.ndarray],
        user_model: InputModel,
    ) -> np.ndarray:
        """``P(child | parent)`` from the glue cone at current beliefs."""
        priors = {ln: known[ln] for ln in edge.internal}
        edge.estimator.update_inputs(
            SegmentInputs(user_model, edge.primary, FixedMarginalInputs(priors))
        )
        edge.estimator.estimate()
        joint = edge.estimator.pair_joint(edge.parent, edge.child)
        joint = calibrate_joint(joint, known[edge.parent], known[edge.child])
        return _rows_to_conditional(joint, known[edge.child])

    def conditional_batch(
        self,
        edge: GlueEdge,
        known: Dict[str, np.ndarray],
        models: List[InputModel],
    ) -> np.ndarray:
        """Per-scenario ``(K, 4, 4)`` stack of glue conditionals."""
        k = len(models)
        tables = np.empty((k, N_STATES, N_STATES))
        for j in range(k):
            priors = {ln: known[ln][j] for ln in edge.internal}
            edge.estimator.update_inputs(
                SegmentInputs(models[j], edge.primary, FixedMarginalInputs(priors))
            )
            edge.estimator.estimate()
            joint = edge.estimator.pair_joint(edge.parent, edge.child)
            joint = calibrate_joint(
                joint, known[edge.parent][j], known[edge.child][j]
            )
            tables[j] = _rows_to_conditional(joint, known[edge.child][j])
        return tables


def _rows_to_conditional(joint: np.ndarray, child_prior: np.ndarray) -> np.ndarray:
    """Normalize a joint's rows into ``P(child | parent)``; rows with
    (near-)zero parent mass fall back to the child's marginal -- the
    same convention as the live boundary-conditional query."""
    rows = np.empty((N_STATES, N_STATES))
    for state in range(N_STATES):
        mass = joint[state].sum()
        rows[state] = joint[state] / mass if mass > 1e-15 else child_prior
    return rows


# ----------------------------------------------------------------------
# The refinement loop
# ----------------------------------------------------------------------


def run_refinement(
    estimator,
    known: Dict[str, np.ndarray],
    models: Optional[List[InputModel]] = None,
    needed: Optional[Dict[int, List[Tuple[str, str]]]] = None,
    enum_joints: Optional[Dict[Tuple[int, str, str], np.ndarray]] = None,
    dtype: str = "float64",
) -> Tuple[int, float]:
    """Refine ``known`` in place; returns ``(iterations, last_delta)``.

    Handles both the single-scenario layout (``models is None``,
    ``known`` maps line -> ``(4,)``) and the batched layout (``known``
    maps line -> ``(K, 4)``); the batched path threads the enumeration
    pair-joint cache exactly like the base pass.  With
    ``parallelism >= 2`` glue cones evaluate concurrently and dirty
    segments re-propagate level-by-level over the segment DAG --
    bitwise identical to the serial sweep, since a level's members
    never consume each other's lines.
    """
    refiner: Optional[BoundaryRefiner] = estimator._refiner
    max_iters = estimator.effective_refine_iters()
    if refiner is None or not refiner.edges or max_iters <= 0:
        return 0, 0.0
    batched = models is not None
    tracer = get_tracer()
    metrics = get_metrics()
    tol = estimator.refine_tol
    #: belief changes below this neither cascade nor count as progress
    prune = max(tol * 1e-2, 1e-13)
    pool = None
    if estimator.parallelism > 1:
        from concurrent.futures import ThreadPoolExecutor

        pool = ThreadPoolExecutor(max_workers=estimator.parallelism)
    prev_tables: Dict[Tuple[int, str], np.ndarray] = {}
    iterations = 0
    delta = float("inf")
    try:
        with tracer.span(
            "segmented.refine",
            circuit=estimator.circuit.name,
            glue_edges=len(refiner.edges),
            max_iters=max_iters,
            backend="segmented",
        ) as span:
            for iteration in range(max_iters):
                with tracer.span(
                    "segmented.refine.iteration", iteration=iteration
                ) as it_span:
                    glue_tables, delta_glue, dirty = _evaluate_glue(
                        refiner, estimator, known, models, prev_tables,
                        prune, pool,
                    )
                    delta_lines = _repropagate(
                        estimator, known, dirty, glue_tables, prune, pool,
                        models, needed, enum_joints, dtype,
                    )
                    delta = max(delta_glue, delta_lines)
                    iterations += 1
                    it_span.annotate(
                        delta=delta, dirty_segments=len(dirty)
                    )
                    if metrics.enabled:
                        metrics.gauge("seg.refine.delta").set(delta)
                    if delta <= tol:
                        break
            span.annotate(iterations=iterations, delta=delta)
        if metrics.enabled:
            metrics.gauge("seg.refine.iterations").set(iterations)
    finally:
        if pool is not None:
            pool.shutdown(wait=False)
    return iterations, delta


def _evaluate_glue(
    refiner: BoundaryRefiner,
    estimator,
    known,
    models,
    prev_tables,
    prune,
    pool,
):
    """Evaluate every glue cone; return (tables by consumer, max table
    delta, dirty consumer indices)."""
    if models is None:
        def evaluate(edge):
            return refiner.conditional(edge, known, estimator.input_model)
    else:
        def evaluate(edge):
            return refiner.conditional_batch(edge, known, models)

    if pool is not None:
        new_tables = list(pool.map(evaluate, refiner.edges))
    else:
        new_tables = [evaluate(edge) for edge in refiner.edges]

    glue_tables: Dict[int, Dict[str, np.ndarray]] = {}
    delta_glue = 0.0
    dirty: set = set()
    for edge, table in zip(refiner.edges, new_tables):
        key = (edge.index, edge.child)
        prev = prev_tables.get(key)
        if prev is None:
            # The base pass baked the independent placeholder: the
            # child's prior tiled over parent states.
            child_prior = np.asarray(known[edge.child], dtype=np.float64)
            if models is None:
                prev = np.tile(child_prior, (N_STATES, 1))
            else:
                prev = np.repeat(child_prior[:, None, :], N_STATES, axis=1)
        table_delta = float(np.abs(table - prev).max())
        delta_glue = max(delta_glue, table_delta)
        prev_tables[key] = table
        glue_tables.setdefault(edge.index, {})[edge.child] = table
        if table_delta > prune:
            dirty.add(edge.index)
    return glue_tables, delta_glue, dirty


def _repropagate(
    estimator,
    known,
    dirty,
    glue_tables,
    prune,
    pool,
    models,
    needed,
    enum_joints,
    dtype,
):
    """One topological sweep re-propagating dirty segments; returns the
    max published-belief delta.  Dirtiness cascades: a segment is dirty
    when its glue tables changed or any of its boundary inputs moved
    more than the prune threshold."""
    changed: set = set()
    delta_lines = 0.0

    def propagate(index):
        if models is None:
            return estimator._propagate_segment(
                index, known, glue_tables=glue_tables.get(index)
            )
        return estimator._propagate_segment_batch(
            index, known, models, needed, enum_joints,
            glue_tables=glue_tables.get(index), dtype=dtype,
        )

    def is_dirty(index):
        if index in dirty:
            return True
        segment = estimator.graph[index].segment
        return any(line in changed for line in segment.inputs)

    def merge(published):
        nonlocal delta_lines
        for line, value in published.items():
            line_delta = float(np.abs(value - known[line]).max())
            known[line] = value
            if line_delta > prune:
                changed.add(line)
            delta_lines = max(delta_lines, line_delta)

    if pool is not None:
        levels = estimator._segment_levels()
        for level in range(max(levels) + 1):
            members = [
                i for i, lv in enumerate(levels)
                if lv == level and is_dirty(i)
            ]
            if not members:
                continue
            for published in pool.map(propagate, members):
                merge(published)
    else:
        for index in range(len(estimator.graph)):
            if is_dirty(index):
                merge(propagate(index))
    return delta_lines
