"""Boundary input models: what crosses a segment cut.

A segment's input lines split into primary inputs of the full circuit
(which keep the user model's statistics) and *boundary* lines driven by
upstream segments.  The models here describe the boundary side:

- :class:`FixedMarginalInputs` pins each line to a bare 4-state
  marginal (the paper's preliminary scheme -- all cross-cut correlation
  is dropped);
- :class:`TreeBoundaryInputs` additionally carries a spanning forest of
  pairwise joints, each edge stored as ``P(child | parent)``;
- :class:`SegmentInputs` composes a user model over the primaries with
  a boundary model over the rest.

All three implement the :class:`BoundaryModel` protocol, which is what
the segment graph and the iterative refinement loop program against: a
boundary model exposes its forest structure (``parent_of``) and can be
re-instantiated with refreshed statistics (``with_statistics``) without
touching the compiled LIDAG, whose CPD *structure* was baked from the
same forest at compile time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.bayesian.cpd import TabularCPD
from repro.core.inputs import InputModel
from repro.core.states import N_STATES, current_values, previous_values
from repro.errors import SegmentBoundaryError

__all__ = [
    "BoundaryModel",
    "FixedMarginalInputs",
    "SegmentInputs",
    "TreeBoundaryInputs",
]


class BoundaryModel(InputModel):
    """Protocol for input models that carry cross-cut statistics.

    Beyond the :class:`~repro.core.inputs.InputModel` surface, a
    boundary model exposes the *structure* of the joint factors it
    carries -- a spanning forest over boundary lines -- and supports
    cheap re-instantiation with refreshed numbers.  The structure is
    baked into each segment's LIDAG at compile time; the numbers are
    refreshed from upstream segments at every propagation (and at every
    refinement iteration).
    """

    @property
    def parent_of(self) -> Mapping[str, str]:
        """Forest edges as ``child -> parent``; empty for marginals-only."""
        return {}

    def with_statistics(
        self,
        priors: Mapping[str, np.ndarray],
        conditionals: Optional[Mapping[str, np.ndarray]] = None,
    ) -> "BoundaryModel":
        """A new model with the same structure and fresh numbers."""
        raise NotImplementedError


class FixedMarginalInputs(BoundaryModel):
    """Input model pinning each input line to a given 4-state marginal.

    Used internally to feed upstream-segment marginals into downstream
    segments; also handy for tests.
    """

    def __init__(self, distributions: Mapping[str, np.ndarray]):
        self._distributions = {
            name: np.asarray(dist, dtype=np.float64)
            for name, dist in distributions.items()
        }
        for name, dist in self._distributions.items():
            if dist.shape != (N_STATES,):
                raise SegmentBoundaryError(
                    f"distribution for {name!r} must have length {N_STATES}"
                )
            if not np.isclose(dist.sum(), 1.0, atol=1e-8):
                raise SegmentBoundaryError(
                    f"distribution for {name!r} does not sum to 1"
                )

    def with_statistics(self, priors, conditionals=None) -> "FixedMarginalInputs":
        return FixedMarginalInputs(priors)

    def marginal_distribution(self, name: str) -> np.ndarray:
        if name not in self._distributions:
            raise KeyError(f"no distribution for input {name!r}")
        return self._distributions[name]

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return [
            TabularCPD.prior(name, self.marginal_distribution(name))
            for name in input_names
        ]

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        # Distributions were validated once in __init__; sweeps may
        # skip the per-call CPD re-checks.
        return self._trusted_priors(input_names)

    def sample_pairs(self, input_names, n_pairs, rng):
        states = np.empty((n_pairs, len(input_names)), dtype=np.int64)
        for j, name in enumerate(input_names):
            states[:, j] = rng.choice(
                N_STATES, size=n_pairs, p=self.marginal_distribution(name)
            )
        return (
            previous_values(states).astype(np.uint8),
            current_values(states).astype(np.uint8),
        )


class TreeBoundaryInputs(BoundaryModel):
    """Segment input model with tree-structured boundary correlation.

    Boundary lines form a forest: roots carry their upstream marginal,
    every other line carries a conditional table given its tree parent
    (both refreshed from the upstream junction trees at estimate time).
    This implements the paper's stated future work -- "an efficient
    segmentation technique that will reduce the standard deviation and
    the mean error" -- by letting pairwise boundary joints cross the cut
    instead of bare marginals.
    """

    def __init__(
        self,
        priors: Mapping[str, np.ndarray],
        parent_of: Mapping[str, str],
        conditionals: Optional[Mapping[str, np.ndarray]] = None,
    ):
        self._priors = {k: np.asarray(v, dtype=np.float64) for k, v in priors.items()}
        self._parent_of = dict(parent_of)
        self._conditionals = {
            k: np.asarray(v, dtype=np.float64) for k, v in (conditionals or {}).items()
        }
        for child, parent in self._parent_of.items():
            if child not in self._priors or parent not in self._priors:
                raise KeyError(f"tree edge {parent!r}->{child!r} references unknown line")

    @property
    def parent_of(self) -> Mapping[str, str]:
        return self._parent_of

    def with_statistics(self, priors, conditionals=None) -> "TreeBoundaryInputs":
        return TreeBoundaryInputs(priors, self._parent_of, conditionals)

    def marginal_distribution(self, name: str) -> np.ndarray:
        return self._priors[name]

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return self._build_cpds(input_names, trusted=False)

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        # Priors and conditionals are extracted from calibrated upstream
        # junction trees (normalized by construction), so sweeps skip
        # the per-call row-sum re-checks.
        return self._build_cpds(input_names, trusted=True)

    def _build_cpds(
        self, input_names: Sequence[str], trusted: bool
    ) -> List[TabularCPD]:
        available = set(input_names)
        cpds: List[TabularCPD] = []
        for name in input_names:
            parent = self._parent_of.get(name)
            if parent is None or parent not in available:
                if trusted:
                    cpds.append(TabularCPD._trusted(name, self._priors[name]))
                else:
                    cpds.append(TabularCPD.prior(name, self._priors[name]))
            else:
                table = self._conditionals.get(name)
                if table is None:
                    # Placeholder structure before numbers are known.
                    table = np.tile(self._priors[name], (N_STATES, 1))
                if trusted:
                    cpds.append(TabularCPD._trusted(name, table, [parent]))
                else:
                    cpds.append(TabularCPD(name, N_STATES, table, [parent]))
        return cpds

    def sample_pairs(self, input_names, n_pairs, rng):
        index = {name: j for j, name in enumerate(input_names)}
        ordered = [n for n in input_names if self._parent_of.get(n) not in index]
        pending = [n for n in input_names if n not in ordered]
        while pending:
            progressed = [n for n in pending if self._parent_of[n] in set(ordered)]
            if not progressed:
                raise SegmentBoundaryError("boundary tree contains a cycle")
            ordered.extend(progressed)
            pending = [n for n in pending if n not in set(progressed)]
        states = np.empty((n_pairs, len(input_names)), dtype=np.int64)
        for name in ordered:
            j = index[name]
            parent = self._parent_of.get(name)
            if parent is None or parent not in index or name not in self._conditionals:
                states[:, j] = rng.choice(N_STATES, size=n_pairs, p=self._priors[name])
            else:
                table = self._conditionals[name]
                parent_states = states[:, index[parent]]
                u = rng.random(n_pairs)[:, None]
                cdfs = np.cumsum(table[parent_states], axis=1)
                states[:, j] = (u > cdfs[:, :-1]).sum(axis=1)
        return (
            previous_values(states).astype(np.uint8),
            current_values(states).astype(np.uint8),
        )


class SegmentInputs(InputModel):
    """Composite per-segment input model.

    A segment's input lines split into two kinds: *primary* inputs of
    the full circuit, and *boundary* lines driven by upstream segments.
    Primary inputs delegate to the user's input model -- preserving any
    input-to-input correlation CPDs (e.g.
    :class:`~repro.core.inputs.CorrelatedGroupInputs` chains) among the
    primaries present in the segment -- while boundary lines use the
    marginals (plus tree conditionals) refreshed from upstream segments.

    Before this model existed, the segmentation replaced *every* input
    line's statistics with bare marginals, silently dropping spatial
    input correlation even for circuits small enough to fit a single
    segment (found by the differential fuzz harness).
    """

    def __init__(
        self, user_model: InputModel, primary: Iterable[str], boundary: InputModel
    ):
        self.user_model = user_model
        self.primary = frozenset(primary)
        self.boundary = boundary

    def _split(self, input_names: Sequence[str]):
        primary = [n for n in input_names if n in self.primary]
        rest = [n for n in input_names if n not in self.primary]
        return primary, rest

    def marginal_distribution(self, name: str) -> np.ndarray:
        if name in self.primary:
            return self.user_model.marginal_distribution(name)
        return self.boundary.marginal_distribution(name)

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        primary, rest = self._split(input_names)
        return self.user_model.input_cpds(primary) + self.boundary.input_cpds(rest)

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        primary, rest = self._split(input_names)
        return self.user_model.input_cpds_trusted(
            primary
        ) + self.boundary.input_cpds_trusted(rest)

    def sample_pairs(self, input_names, n_pairs, rng):
        primary, rest = self._split(input_names)
        index = {name: j for j, name in enumerate(input_names)}
        prev = np.empty((n_pairs, len(input_names)), dtype=np.uint8)
        cur = np.empty_like(prev)
        for names, model in ((primary, self.user_model), (rest, self.boundary)):
            if not names:
                continue
            part_prev, part_cur = model.sample_pairs(names, n_pairs, rng)
            for j, name in enumerate(names):
                prev[:, index[name]] = part_prev[:, j]
                cur[:, index[name]] = part_cur[:, j]
        return prev, cur
