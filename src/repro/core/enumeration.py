"""Exact segment estimation by support enumeration.

Every internal CPD of a LIDAG is deterministic, so the joint
distribution of a segment with ``k`` input lines has at most ``4^k``
support points -- regardless of the moral graph's treewidth.  This
backend enumerates those support points in one vectorized pass:

1. build the ``4^k`` grid of joint input states,
2. weight each grid row by the input model (independent priors or the
   tree-boundary chain conditionals),
3. push the whole grid through the segment's gates with the cached
   transition-function tables,
4. read any line's distribution (or any pair's joint) by weighted
   bincount.

It serves as the fallback when a segment's junction tree would exceed
the clique budget: high-treewidth but input-narrow segments (exactly
the shape of reconvergent cones) stay *exact* instead of being split
into lossy sub-segments.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional

import numpy as np

from repro.circuits.netlist import Circuit
from repro.core.backend.base import Method
from repro.core.cpt import _transition_function
from repro.core.estimator import SwitchingEstimate
from repro.core.inputs import InputModel
from repro.core.states import N_STATES
from repro.errors import SegmentTooWide

__all__ = ["EnumerationSegment", "SegmentTooWide"]


class EnumerationSegment:
    """Drop-in segment estimator based on support enumeration.

    Exposes the same surface the segmented estimator uses:
    :meth:`update_inputs`, :meth:`estimate`, and (beyond the junction
    tree) :meth:`pair_joint` for *any* pair of segment lines.

    Parameters
    ----------
    circuit:
        The segment subcircuit.
    input_model:
        Joint model of the segment's input lines; priors and chain
        conditionals (``TreeBoundaryInputs``) are supported.
    max_input_states:
        Budget on ``4^k``; exceeding it raises :class:`SegmentTooWide`.
    keep_lines:
        Lines whose enumerated states are retained for later
        :meth:`pair_joint` queries (defaults to all lines).
    """

    def __init__(
        self,
        circuit: Circuit,
        input_model: InputModel,
        max_input_states: int = 4 ** 9,
        keep_lines: Optional[Iterable[str]] = None,
    ):
        k = circuit.num_inputs
        n_rows = N_STATES ** k
        if n_rows > max_input_states:
            raise SegmentTooWide(
                f"{circuit.name}: 4^{k} = {n_rows} input states exceeds "
                f"budget {max_input_states}"
            )
        self.circuit = circuit
        self.input_model = input_model
        self.n_rows = n_rows
        self.keep_lines = set(keep_lines) if keep_lines is not None else None
        self.compile_seconds = 0.0
        self._weights: Optional[np.ndarray] = None
        self._kept_states: Dict[str, np.ndarray] = {}
        # The input-state grid is structural; build it once.
        start = time.perf_counter()
        self._rebuild_grid()
        self.compile_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------

    def update_inputs(self, input_model: InputModel) -> None:
        """Swap input statistics; weights are rebuilt at next estimate."""
        self.input_model = input_model
        self._weights = None
        self._kept_states = {}

    def _compute_weights(self) -> np.ndarray:
        """Per-row joint probability of the input assignment."""
        weights = np.ones(self.n_rows)
        for cpd in self.input_model.input_cpds(self.circuit.inputs):
            child_states = self._input_states[cpd.variable]
            table = cpd.to_factor().values
            if cpd.parents:
                parent_states = self._input_states[cpd.parents[0]]
                weights *= table[parent_states, child_states]
            else:
                weights *= table[child_states]
        return weights

    def estimate(self) -> SwitchingEstimate:
        """Enumerate the segment's joint support and read all marginals."""
        start = time.perf_counter()
        weights = self._compute_weights()
        states: Dict[str, np.ndarray] = dict(self._input_states)
        distributions: Dict[str, np.ndarray] = {}
        for name in self.circuit.inputs:
            distributions[name] = self._distribution(states[name], weights)
        for line in self.circuit.topological_order():
            gate = self.circuit.driver(line)
            if gate is None:
                continue
            table = np.asarray(_transition_function(gate.gate_type, gate.arity), dtype=np.int8)
            flat = np.zeros(self.n_rows, dtype=np.int32)
            for src in gate.inputs:
                flat = flat * N_STATES + states[src]
            states[line] = table[flat]
            distributions[line] = self._distribution(states[line], weights)
        self._weights = weights
        if self.keep_lines is None:
            self._kept_states = states
        else:
            self._kept_states = {
                ln: st for ln, st in states.items() if ln in self.keep_lines
            }
        propagate_seconds = time.perf_counter() - start
        return SwitchingEstimate(
            distributions=distributions,
            compile_seconds=self.compile_seconds,
            propagate_seconds=propagate_seconds,
            method=Method.ENUMERATION.value,
        )

    def estimate_many(self, input_models) -> "list[SwitchingEstimate]":
        """Estimate K scenarios sequentially.

        Enumeration is already one vectorized pass over the support
        grid, so there is no batched kernel to exploit; this simply
        loops :meth:`update_inputs` + :meth:`estimate`.  After the call
        the cached states/weights (and therefore :meth:`pair_joint`)
        reflect the *last* scenario -- batched callers that need
        per-scenario pair joints must read them inside the loop, which
        :class:`repro.core.segmentation.SegmentedEstimator` does.
        """
        results = []
        for model in input_models:
            self.update_inputs(model)
            results.append(self.estimate())
        return results

    def reset_propagation(self) -> None:
        """No-op: every estimate is already a full pass."""

    def __getstate__(self):
        # The grid and the per-query caches are rebuildable and can be
        # tens of megabytes on wide segments; drop them from artifacts.
        state = self.__dict__.copy()
        state["_input_states"] = None
        state["_weights"] = None
        state["_kept_states"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._rebuild_grid()

    def _rebuild_grid(self) -> None:
        k = self.circuit.num_inputs
        if k:
            grids = np.meshgrid(
                *([np.arange(N_STATES, dtype=np.int8)] * k), indexing="ij"
            )
            self._input_states = {
                name: grid.reshape(-1)
                for name, grid in zip(self.circuit.inputs, grids)
            }
        else:
            self._input_states = {}

    @staticmethod
    def _distribution(states: np.ndarray, weights: np.ndarray) -> np.ndarray:
        dist = np.zeros(N_STATES)
        np.add.at(dist, states, weights)
        total = dist.sum()
        return dist / total if total > 0 else np.full(N_STATES, 1.0 / N_STATES)

    # ------------------------------------------------------------------

    def pair_joint(self, a: str, b: str) -> np.ndarray:
        """Normalized 4x4 joint of two segment lines (``a``-major).

        Requires a prior :meth:`estimate` call (states are cached from
        it) and both lines to be in ``keep_lines``.
        """
        if self._weights is None:
            self.estimate()
        missing = {a, b} - set(self._kept_states)
        if missing:
            raise KeyError(f"states not retained for {sorted(missing)}")
        joint = np.zeros((N_STATES, N_STATES))
        flat = self._kept_states[a] * N_STATES + self._kept_states[b]
        np.add.at(joint.reshape(-1), flat, self._weights)
        total = joint.sum()
        return joint / total if total > 0 else np.full((N_STATES, N_STATES), 1 / 16)

    def stats(self) -> Dict[str, float]:
        return {
            "cliques": 0,
            "max_clique_vars": 0,
            "max_clique_states": self.n_rows,
            "fill_ins": 0,
            "total_table_entries": self.n_rows,
        }
