"""Sweep planning: scenario dedup and delta-chain ordering.

A K-scenario sweep rarely consists of K unrelated statistics: synthesis
loops repeat scenarios exactly, and parameter sweeps change one input
at a time.  The planners here turn per-input CPD digests (from
:func:`repro.core.rcache.input_cpd_signatures`) into the two structures
delta sweeps need:

- :func:`group_scenarios` -- collapse exact duplicates to unique
  representatives plus a scatter index mapping every scenario back to
  its representative's result row.
- :func:`plan_delta_order` -- a greedy nearest-neighbour ordering by
  CPD-change Hamming distance (how many inputs' CPDs differ), so an
  incremental chain updates as few potentials as possible between
  consecutive scenarios.

Both are pure index computations -- they never touch the engine, so
they cannot perturb the bitwise-parity contract of the sweeps built on
top of them.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

__all__ = ["group_scenarios", "hamming_distance", "plan_delta_order"]


def group_scenarios(
    keys: Sequence[Hashable],
) -> Tuple[List[int], List[int]]:
    """Collapse equal keys to first-occurrence representatives.

    Returns ``(reps, scatter)``: ``reps[r]`` is the index of the ``r``-th
    unique scenario (in first-appearance order) and ``scatter[j]`` is the
    representative row serving scenario ``j`` -- so a result computed per
    representative fans back out as ``results[scatter[j]]``.
    """
    positions: Dict[Hashable, int] = {}
    reps: List[int] = []
    scatter: List[int] = []
    for index, key in enumerate(keys):
        position = positions.get(key)
        if position is None:
            position = positions[key] = len(reps)
            reps.append(index)
        scatter.append(position)
    return reps, scatter


def hamming_distance(
    a: Dict[str, Tuple[bytes, Tuple[str, ...]]],
    b: Dict[str, Tuple[bytes, Tuple[str, ...]]],
) -> int:
    """Number of inputs whose CPD digests differ between two scenarios."""
    return sum(1 for name, sig in a.items() if b.get(name) != sig)


def plan_delta_order(
    signatures: Sequence[Dict[str, Tuple[bytes, Tuple[str, ...]]]],
) -> List[int]:
    """Greedy nearest-neighbour visiting order over the scenarios.

    Starts at scenario 0 and repeatedly hops to the unvisited scenario
    with the fewest changed input CPDs (ties broken by index, so the
    plan is deterministic).  O(K^2 * inputs) -- fine for the sweep sizes
    the batched engine can hold anyway.
    """
    count = len(signatures)
    if count <= 2:
        return list(range(count))
    remaining = set(range(1, count))
    order = [0]
    current = 0
    while remaining:
        best = None
        best_distance = None
        for candidate in sorted(remaining):
            distance = hamming_distance(
                signatures[current], signatures[candidate]
            )
            if best_distance is None or distance < best_distance:
                best, best_distance = candidate, distance
                if distance == 0:
                    break
        order.append(best)
        remaining.remove(best)
        current = best
    return order
