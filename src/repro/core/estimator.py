"""The user-facing switching-activity estimator.

:class:`SwitchingActivityEstimator` implements the paper's flow on a
single Bayesian network:

- ``compile()`` -- build the LIDAG, moralize, triangulate, and build the
  junction tree (slow, once per circuit),
- ``estimate()`` -- calibrate by message passing and read off every
  line's 4-state marginal (fast),
- ``update_inputs()`` -- swap input statistics without recompiling
  (the paper's advantage #3: "repeated computation of switching activity
  of the circuit with different input statistics does not require much
  time").

:func:`exact_switching_by_enumeration` is the brute-force oracle used
to prove exactness on small circuits.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.bayesian.junction import JunctionTree
from repro.bayesian.propagation import PropagationCounters
from repro.circuits.netlist import Circuit
from repro.core.backend.base import Method
from repro.core.cpt import output_transition
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.lidag import build_lidag
from repro.core.states import N_STATES, switching_probability
from repro.obs.trace import get_tracer


def __getattr__(name: str):
    # Deprecated alias: CliqueBudgetExceeded used to be re-exported
    # here; its home is now the backend layer.
    if name == "CliqueBudgetExceeded":
        warnings.warn(
            "importing CliqueBudgetExceeded from repro.core.estimator is "
            "deprecated; import it from repro.core.backend (or repro)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.backend.errors import CliqueBudgetExceeded

        return CliqueBudgetExceeded
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class SwitchingEstimate:
    """Per-line switching estimates plus timing breakdown."""

    #: 4-state transition distribution per line name.
    distributions: Dict[str, np.ndarray]
    #: seconds spent building LIDAG + junction tree (the compile phase)
    compile_seconds: float
    #: seconds spent calibrating + reading marginals (the update phase)
    propagate_seconds: float
    #: one of the :class:`repro.core.backend.Method` values
    method: str = Method.SINGLE_BN.value
    #: number of Bayesian networks used
    segments: int = 1
    #: degradation steps the facade took to produce this estimate, as
    #: ``(failed backend, reason)`` pairs; empty when the first backend
    #: in the chain succeeded.
    fallbacks: Tuple[Tuple[str, str], ...] = ()
    #: how the facade obtained the compiled model: ``True`` (cache hit),
    #: ``False`` (miss), or ``None`` (no cache consulted / direct use)
    cache_hit: Optional[bool] = None
    #: whether the *result* came out of a fingerprint-keyed result cache
    #: (``repro.core.rcache``): ``True`` (replayed), ``False`` (freshly
    #: propagated through a consulted cache), ``None`` (no result cache)
    result_cache_hit: Optional[bool] = None
    #: boundary-refinement iterations actually run (segmented backend
    #: with ``refine > 0``; 0 everywhere else)
    refine_iterations: int = 0
    #: max boundary-belief delta at the last refinement iteration
    refine_delta: float = 0.0

    def switching(self, line: str) -> float:
        """Switching activity of one line: P(x01) + P(x10)."""
        return switching_probability(self.distributions[line])

    @property
    def activities(self) -> Dict[str, float]:
        """Switching activity of every line."""
        return {ln: self.switching(ln) for ln in self.distributions}

    def mean_activity(self) -> float:
        """Average switching activity over all lines."""
        acts = self.activities
        return float(np.mean(list(acts.values()))) if acts else 0.0

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.propagate_seconds


class SwitchingActivityEstimator:
    """Single-BN switching-activity estimation for a combinational circuit.

    Parameters
    ----------
    circuit:
        The circuit to analyse.
    input_model:
        Primary-input statistics (default: independent fair coins).
    heuristic:
        Triangulation heuristic, ``"min_fill"`` (default) or
        ``"min_degree"``.
    max_clique_states:
        Budget on the largest clique table.  Exceeding it raises
        :class:`CliqueBudgetExceeded` so callers can segment instead of
        thrashing memory.  ``None`` disables the check.
    kernel:
        Message-kernel mode, ``"auto"`` (default), ``"dense"`` or
        ``"sparse"`` -- see :meth:`JunctionTree.from_network`.
    """

    def __init__(
        self,
        circuit: Circuit,
        input_model: Optional[InputModel] = None,
        heuristic: str = "min_fill",
        max_clique_states: Optional[int] = 4 ** 10,
        kernel: str = "auto",
    ):
        self.circuit = circuit
        self.input_model = input_model if input_model is not None else IndependentInputs(0.5)
        self.heuristic = heuristic
        self.max_clique_states = max_clique_states
        self.kernel = kernel
        self._bn = None
        self._jt: Optional[JunctionTree] = None
        self.compile_seconds = 0.0

    # ------------------------------------------------------------------

    def compile(self) -> "SwitchingActivityEstimator":
        """Build the LIDAG and its junction tree (idempotent)."""
        if self._jt is not None:
            return self
        with get_tracer().span(
            "estimator.compile",
            circuit=self.circuit.name,
            backend="junction-tree",
        ) as span:
            self._bn = build_lidag(self.circuit, self.input_model)
            self._jt = JunctionTree.from_network(
                self._bn,
                heuristic=self.heuristic,
                max_clique_states=self.max_clique_states,
                kernel=self.kernel,
            )
        self.compile_seconds = span.duration
        return self

    @property
    def junction_tree(self) -> JunctionTree:
        """The compiled junction tree (compiles on first access)."""
        self.compile()
        return self._jt

    def update_inputs(self, input_model: InputModel) -> None:
        """Swap input statistics without recompiling.

        Requires the new model to induce the same input-to-input edge
        structure (e.g. independent -> temporal is fine; adding new
        correlation groups needs a recompile).
        """
        self.compile()
        new_cpds = input_model.input_cpds(self.circuit.inputs)
        self._jt.update_cpds(new_cpds)
        self.input_model = input_model

    # ------------------------------------------------------------------

    def estimate(self, lines=None) -> SwitchingEstimate:
        """Calibrate and return every line's transition distribution.

        ``lines`` restricts which marginals are extracted (default: all
        circuit lines).  The segmented pipeline passes each segment's
        published lines, so marginals the caller would discard are never
        computed.
        """
        self.compile()
        tracer = get_tracer()
        wanted = list(self.circuit.lines) if lines is None else list(lines)
        with tracer.span(
            "estimator.propagate",
            circuit=self.circuit.name,
            backend="junction-tree",
        ) as span:
            with tracer.span("propagate.calibrate"):
                self._jt.calibrate()
            # One batched sweep reads every line's marginal, grouped by
            # home clique, instead of one marginalization per line.
            with tracer.span("propagate.marginals", lines=len(wanted)):
                batched = self._jt.marginals(wanted)
                distributions = {line: batched[line] for line in wanted}
        return SwitchingEstimate(
            distributions=distributions,
            compile_seconds=self.compile_seconds,
            propagate_seconds=span.duration,
            method=Method.SINGLE_BN.value,
        )

    def estimate_many(
        self,
        input_models,
        dtype: str = "float64",
        sweep_mode: str = "batched",
    ) -> "list[SwitchingEstimate]":
        """Estimate K input-statistics scenarios in one batched pass.

        All scenarios propagate through the compiled junction tree
        together: the engine stacks a leading batch axis onto every
        belief and message buffer and runs a single vectorized
        collect/distribute sweep, so the per-query Python overhead
        (schedule walking, kernel dispatch, marginal extraction) is paid
        once instead of K times.  Result ``k`` is bitwise-identical to
        an independent ``estimate()`` with scenario ``k``'s model.

        ``sweep_mode`` selects the execution plan: ``"batched"`` (the
        default) is the vectorized pass above; ``"delta"`` collapses
        duplicate scenarios, orders the unique ones greedily by
        CPD-change Hamming distance, and runs an incremental chain --
        :meth:`JunctionTree.update_cpds_chain` on only the changed input
        CPDs, then a dirty-clique repropagation -- which wins when
        consecutive scenarios share most of their statistics;
        ``"auto"`` picks ``"delta"`` exactly when duplicates exist.
        Every mode returns bitwise-identical results (dirty-path
        repropagation recomputes with the same kernels over the same
        potentials, and cached clean-subtree messages are the bitwise
        product of those same kernels).

        Every model must induce the same input-to-input edge structure
        as the compiled one (same rule as :meth:`update_inputs`).  This
        does not touch the single-query state: ``self.input_model`` and
        a subsequent :meth:`estimate` are unaffected (the delta chain
        restores the original input CPDs when it finishes).
        ``propagate_seconds`` on each result is the amortized per-
        scenario share of the sweep.
        """
        models = list(input_models)
        if not models:
            return []
        if sweep_mode not in ("auto", "batched", "delta"):
            raise ValueError(
                f"unknown sweep_mode {sweep_mode!r} (auto|batched|delta)"
            )
        mode = sweep_mode
        if mode != "batched" and len(models) > 1:
            from repro.core.rcache import input_cpd_signatures
            from repro.core.sweep import group_scenarios

            signatures = [
                input_cpd_signatures(self.circuit, m) for m in models
            ]
            keys = [
                tuple(sig[name][0] for name in sorted(sig))
                for sig in signatures
            ]
            reps, scatter = group_scenarios(keys)
            if mode == "auto":
                mode = "delta" if len(reps) < len(models) else "batched"
            if mode == "delta":
                return self._estimate_many_delta(
                    models, signatures, reps, scatter
                )
        lines = list(self.circuit.lines)
        batched, per_scenario = self.estimate_many_stacked(models, lines, dtype=dtype)
        return [
            SwitchingEstimate(
                distributions={line: batched[line][k] for line in lines},
                compile_seconds=self.compile_seconds,
                propagate_seconds=per_scenario,
                method=Method.SINGLE_BN.value,
            )
            for k in range(len(models))
        ]

    def _estimate_many_delta(
        self, models, signatures, reps, scatter
    ) -> "list[SwitchingEstimate]":
        """Incremental delta chain over the unique scenarios.

        Scenarios with equal signatures share one propagation; between
        consecutive unique scenarios only the inputs whose CPD digests
        changed are re-installed, so the engine's dirty-clique tracking
        turns each step into a partial repropagation.  Bitwise parity
        with independent full passes holds because unchanged cliques
        keep messages computed by the same kernels over bitwise-equal
        potentials.  The estimator's own input CPDs are restored on the
        way out, so single-query state is untouched.
        """
        from repro.core.sweep import plan_delta_order

        self.compile()
        tracer = get_tracer()
        lines = list(self.circuit.lines)
        input_names = list(self.circuit.inputs)
        order = plan_delta_order([signatures[rep] for rep in reps])
        original = [self._jt._bn.cpd(name) for name in input_names]
        rep_results: "list[Optional[Dict[str, np.ndarray]]]" = [None] * len(reps)
        with tracer.span(
            "estimator.propagate_chain",
            circuit=self.circuit.name,
            backend="junction-tree",
            scenarios=len(models),
            unique=len(reps),
        ) as span:
            try:
                previous = None
                for position in order:
                    model = models[reps[position]]
                    sig = signatures[reps[position]]
                    cpds = model.input_cpds_trusted(input_names)
                    if previous is None:
                        changed = cpds
                    else:
                        changed = [
                            cpd
                            for cpd in cpds
                            if previous.get(cpd.variable) != sig[cpd.variable]
                        ]
                    if changed:
                        self._jt.update_cpds_chain(changed)
                    self._jt.calibrate()
                    batched = self._jt.marginals(lines)
                    rep_results[position] = {
                        line: np.array(batched[line], copy=True)
                        for line in lines
                    }
                    previous = sig
            finally:
                # Restore via the chain API: its potential reset means
                # the *next* single query is a full pass from fresh
                # initial products, bitwise-equal to a fresh estimator
                # (plain update_cpds would leave the next calibrate on
                # the ~1-ULP dirty-path ratio updates).
                self._jt.update_cpds_chain(original)
        per_scenario = span.duration / len(models)
        return [
            SwitchingEstimate(
                distributions=dict(rep_results[scatter[k]]),
                compile_seconds=self.compile_seconds,
                propagate_seconds=per_scenario,
                method=Method.SINGLE_BN.value,
            )
            for k in range(len(models))
        ]

    def estimate_many_stacked(self, input_models, lines, dtype: str = "float64"):
        """Batched sweep returning stacked ``{line: (K, 4)}`` marginals.

        The workhorse behind :meth:`estimate_many` and the segmented
        pipeline: restricting ``lines`` (e.g. to a segment's owned
        internal lines) skips marginal extraction for everything else,
        and the stacked layout avoids building K per-scenario dicts
        that a segmented caller would immediately re-stack.  Returns
        ``(stacks, per_scenario_seconds)``.  ``dtype="float32"`` runs
        the batched engine in float32 (~1e-6 relative tolerance, half
        the ``K x`` memory).
        """
        models = list(input_models)
        self.compile()
        tracer = get_tracer()
        with tracer.span(
            "estimator.propagate_many",
            circuit=self.circuit.name,
            backend="junction-tree",
            scenarios=len(models),
        ) as span:
            with tracer.span("propagate.update_batch"):
                cpd_sets = [
                    m.input_cpds_trusted(self.circuit.inputs) for m in models
                ]
                self._jt.update_cpds_batch(cpd_sets, dtype=dtype)
            with tracer.span("propagate.calibrate", scenarios=len(models)):
                batched = self._jt.marginals_batch(list(lines))
        return batched, span.duration / len(models)

    def reset_propagation(self) -> None:
        """Mark every clique dirty so the next estimate is a full pass.

        Benchmarks and oracles use this to force complete propagations
        (a full pass is a pure function of the potentials, so two full
        passes over equal inputs agree bitwise); ``repro.serve`` resets
        checked-out replicas before every batch for the same reason --
        responses must not depend on what the replica served before.
        Covers the batched engine too: a reused batch engine's cached
        clean-subtree messages would otherwise make the next sweep a
        dirty-path pass.
        """
        if self._jt is None:
            return
        if self._jt._engine is not None:
            self._jt._engine.mark_all_dirty()
        if self._jt._batch_engine is not None:
            self._jt._batch_engine.mark_all_dirty()

    def propagation_counters(self) -> PropagationCounters:
        """Cumulative engine work counters for this estimator's tree."""
        if self._jt is None:
            return PropagationCounters()
        return self._jt.propagation_counters()

    def factor_bytes(self) -> int:
        """Bytes of preallocated propagation buffers (memory accounting)."""
        return self._jt.engine_factor_bytes() if self._jt is not None else 0

    def support_stats(self) -> Dict[str, object]:
        """Support-analysis summary of the compiled tree (compiles)."""
        self.compile()
        return self._jt.support_stats()

    def line_distribution(self, line: str) -> np.ndarray:
        """Convenience: one line's 4-state marginal."""
        self.compile()
        return self._jt.marginal(line)

    def conditional_distribution(
        self, line: str, evidence: Mapping[str, int]
    ) -> np.ndarray:
        """Posterior transition distribution given observed transitions.

        The Bayesian network answers *diagnostic* queries the classic
        propagation methods cannot: e.g. the switching of an internal
        line given that a primary output was observed to rise
        (``evidence={"out": TransitionState.X01}``).  The evidence is
        local to this call.
        """
        self.compile()
        self._jt.set_evidence({k: int(v) for k, v in evidence.items()})
        try:
            self._jt.calibrate()
            return self._jt.marginal(line)
        finally:
            self._jt.clear_evidence()

    def conditional_switching(self, line: str, evidence: Mapping[str, int]) -> float:
        """Switching activity of ``line`` given observed transitions."""
        return switching_probability(self.conditional_distribution(line, evidence))


def exact_switching_by_enumeration(
    circuit: Circuit, input_model: Optional[InputModel] = None
) -> Dict[str, np.ndarray]:
    """Exact per-line transition distributions by joint enumeration.

    Enumerates all ``4^n`` joint input transition assignments, weights
    each by the input model's joint probability, and functionally
    propagates transitions through the circuit.  Exponential in the
    input count -- this is the ground-truth oracle for small circuits.
    """
    model = input_model if input_model is not None else IndependentInputs(0.5)
    inputs = circuit.inputs
    n = len(inputs)
    if n > 12:
        raise ValueError(f"enumeration over 4^{n} input states is infeasible")

    # Joint input distribution from the model's CPDs (handles correlated
    # groups transparently).
    from repro.bayesian.network import BayesianNetwork

    input_bn = BayesianNetwork("inputs")
    for cpd in model.input_cpds(inputs):
        input_bn.add_cpd(cpd)
    joint = input_bn.joint_factor().permute(inputs)

    distributions = {
        line: np.zeros(N_STATES) for line in circuit.lines
    }
    order = circuit.topological_order()
    for assignment in itertools.product(range(N_STATES), repeat=n):
        weight = float(joint.values[assignment])
        if weight == 0.0:
            continue
        states: Dict[str, int] = dict(zip(inputs, assignment))
        for line in order:
            gate = circuit.driver(line)
            if gate is not None:
                states[line] = int(
                    output_transition(
                        gate.gate_type, [states[s] for s in gate.inputs]
                    )
                )
        for line, state in states.items():
            distributions[line][state] += weight
    return distributions
