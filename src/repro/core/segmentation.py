"""Multiple-BN estimation of large circuits (paper Section 6).

Circuits whose single junction tree would blow the clique budget are cut
into *segments* along the topological order.  Each segment becomes its
own LIDAG/junction tree; the 4-state marginals of the lines crossing a
segment boundary are computed in the upstream segment and handed to the
downstream segment as independent input priors.

This is exactly the paper's "preliminary segmentation scheme":
single-segment circuits are exact, while multi-segment circuits lose the
*joint* correlation of boundary lines (only their marginals cross the
cut), which is the error source the paper reports for its larger
benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayesian.cpd import TabularCPD
from repro.bayesian.propagation import PropagationCounters
from repro.circuits.netlist import Circuit
from repro.core.backend.base import Method
from repro.core.backend.errors import CliqueBudgetExceeded
from repro.core.estimator import SwitchingActivityEstimator, SwitchingEstimate
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.states import N_STATES, current_values, previous_values
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer


class FixedMarginalInputs(InputModel):
    """Input model pinning each input line to a given 4-state marginal.

    Used internally to feed upstream-segment marginals into downstream
    segments; also handy for tests.
    """

    def __init__(self, distributions: Mapping[str, np.ndarray]):
        self._distributions = {
            name: np.asarray(dist, dtype=np.float64)
            for name, dist in distributions.items()
        }
        for name, dist in self._distributions.items():
            if dist.shape != (N_STATES,):
                raise ValueError(f"distribution for {name!r} must have length {N_STATES}")
            if not np.isclose(dist.sum(), 1.0, atol=1e-8):
                raise ValueError(f"distribution for {name!r} does not sum to 1")

    def marginal_distribution(self, name: str) -> np.ndarray:
        if name not in self._distributions:
            raise KeyError(f"no distribution for input {name!r}")
        return self._distributions[name]

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return [
            TabularCPD.prior(name, self.marginal_distribution(name))
            for name in input_names
        ]

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        # Distributions were validated once in __init__; sweeps may
        # skip the per-call CPD re-checks.
        return self._trusted_priors(input_names)

    def sample_pairs(self, input_names, n_pairs, rng):
        states = np.empty((n_pairs, len(input_names)), dtype=np.int64)
        for j, name in enumerate(input_names):
            states[:, j] = rng.choice(
                N_STATES, size=n_pairs, p=self.marginal_distribution(name)
            )
        return (
            previous_values(states).astype(np.uint8),
            current_values(states).astype(np.uint8),
        )


class TreeBoundaryInputs(InputModel):
    """Segment input model with tree-structured boundary correlation.

    Boundary lines form a forest: roots carry their upstream marginal,
    every other line carries a conditional table given its tree parent
    (both refreshed from the upstream junction trees at estimate time).
    This implements the paper's stated future work -- "an efficient
    segmentation technique that will reduce the standard deviation and
    the mean error" -- by letting pairwise boundary joints cross the cut
    instead of bare marginals.
    """

    def __init__(
        self,
        priors: Mapping[str, np.ndarray],
        parent_of: Mapping[str, str],
        conditionals: Optional[Mapping[str, np.ndarray]] = None,
    ):
        self._priors = {k: np.asarray(v, dtype=np.float64) for k, v in priors.items()}
        self._parent_of = dict(parent_of)
        self._conditionals = {
            k: np.asarray(v, dtype=np.float64) for k, v in (conditionals or {}).items()
        }
        for child, parent in self._parent_of.items():
            if child not in self._priors or parent not in self._priors:
                raise KeyError(f"tree edge {parent!r}->{child!r} references unknown line")

    def marginal_distribution(self, name: str) -> np.ndarray:
        return self._priors[name]

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return self._build_cpds(input_names, trusted=False)

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        # Priors and conditionals are extracted from calibrated upstream
        # junction trees (normalized by construction), so sweeps skip
        # the per-call row-sum re-checks.
        return self._build_cpds(input_names, trusted=True)

    def _build_cpds(
        self, input_names: Sequence[str], trusted: bool
    ) -> List[TabularCPD]:
        available = set(input_names)
        cpds: List[TabularCPD] = []
        for name in input_names:
            parent = self._parent_of.get(name)
            if parent is None or parent not in available:
                if trusted:
                    cpds.append(TabularCPD._trusted(name, self._priors[name]))
                else:
                    cpds.append(TabularCPD.prior(name, self._priors[name]))
            else:
                table = self._conditionals.get(name)
                if table is None:
                    # Placeholder structure before numbers are known.
                    table = np.tile(self._priors[name], (N_STATES, 1))
                if trusted:
                    cpds.append(TabularCPD._trusted(name, table, [parent]))
                else:
                    cpds.append(TabularCPD(name, N_STATES, table, [parent]))
        return cpds

    def sample_pairs(self, input_names, n_pairs, rng):
        index = {name: j for j, name in enumerate(input_names)}
        ordered = [n for n in input_names if self._parent_of.get(n) not in index]
        pending = [n for n in input_names if n not in ordered]
        while pending:
            progressed = [n for n in pending if self._parent_of[n] in set(ordered)]
            if not progressed:
                raise ValueError("boundary tree contains a cycle")
            ordered.extend(progressed)
            pending = [n for n in pending if n not in set(progressed)]
        states = np.empty((n_pairs, len(input_names)), dtype=np.int64)
        for name in ordered:
            j = index[name]
            parent = self._parent_of.get(name)
            if parent is None or parent not in index or name not in self._conditionals:
                states[:, j] = rng.choice(N_STATES, size=n_pairs, p=self._priors[name])
            else:
                table = self._conditionals[name]
                parent_states = states[:, index[parent]]
                u = rng.random(n_pairs)[:, None]
                cdfs = np.cumsum(table[parent_states], axis=1)
                states[:, j] = (u > cdfs[:, :-1]).sum(axis=1)
        return (
            previous_values(states).astype(np.uint8),
            current_values(states).astype(np.uint8),
        )


class _SegmentInputs(InputModel):
    """Composite per-segment input model.

    A segment's input lines split into two kinds: *primary* inputs of
    the full circuit, and *boundary* lines driven by upstream segments.
    Primary inputs delegate to the user's input model -- preserving any
    input-to-input correlation CPDs (e.g.
    :class:`~repro.core.inputs.CorrelatedGroupInputs` chains) among the
    primaries present in the segment -- while boundary lines use the
    marginals (plus tree conditionals) refreshed from upstream segments.

    Before this model existed, the segmentation replaced *every* input
    line's statistics with bare marginals, silently dropping spatial
    input correlation even for circuits small enough to fit a single
    segment (found by the differential fuzz harness).
    """

    def __init__(
        self, user_model: InputModel, primary: Iterable[str], boundary: InputModel
    ):
        self.user_model = user_model
        self.primary = frozenset(primary)
        self.boundary = boundary

    def _split(self, input_names: Sequence[str]):
        primary = [n for n in input_names if n in self.primary]
        rest = [n for n in input_names if n not in self.primary]
        return primary, rest

    def marginal_distribution(self, name: str) -> np.ndarray:
        if name in self.primary:
            return self.user_model.marginal_distribution(name)
        return self.boundary.marginal_distribution(name)

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        primary, rest = self._split(input_names)
        return self.user_model.input_cpds(primary) + self.boundary.input_cpds(rest)

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        primary, rest = self._split(input_names)
        return self.user_model.input_cpds_trusted(
            primary
        ) + self.boundary.input_cpds_trusted(rest)

    def sample_pairs(self, input_names, n_pairs, rng):
        primary, rest = self._split(input_names)
        index = {name: j for j, name in enumerate(input_names)}
        prev = np.empty((n_pairs, len(input_names)), dtype=np.uint8)
        cur = np.empty_like(prev)
        for names, model in ((primary, self.user_model), (rest, self.boundary)):
            if not names:
                continue
            part_prev, part_cur = model.sample_pairs(names, n_pairs, rng)
            for j, name in enumerate(names):
                prev[:, index[name]] = part_prev[:, j]
                cur[:, index[name]] = part_cur[:, j]
        return prev, cur


class _SegmentRegistry:
    """Staging area for compiled segments.

    Registration order is the (deterministic) serial compile order.  A
    registry can chain to a frozen ``base``: parallel compile workers
    stage their own chunk's segments locally while resolving boundary
    providers through the base, which holds every lower-level segment.
    Same-level chunks never provide each other's inputs, so a worker's
    view is identical to what the serial pass would have seen.
    """

    __slots__ = ("base", "records", "_provider")

    def __init__(self, base: Optional["_SegmentRegistry"] = None):
        self.base = base
        #: (segment, estimator, owned, parent_of) in registration order
        self.records: List[Tuple[Circuit, object, set, Dict[str, str]]] = []
        self._provider: Dict[str, object] = {}

    def provider_of(self, line: str):
        """The estimator that publishes ``line``, or None."""
        provider = self._provider.get(line)
        if provider is None and self.base is not None:
            return self.base.provider_of(line)
        return provider

    def add(self, segment, estimator, owned, parent_of) -> None:
        self.records.append((segment, estimator, owned, parent_of))
        for line in owned:
            self._provider[line] = estimator


class SegmentedEstimator:
    """Switching-activity estimation with multiple Bayesian networks.

    Parameters
    ----------
    circuit:
        The circuit to analyse.
    input_model:
        Primary-input statistics.  Note: across segment boundaries only
        marginals (or, in ``boundary="tree"`` mode, a spanning forest of
        pairwise joints) propagate, so spatial input correlation is
        preserved exactly only within a single segment.
    max_gates_per_segment:
        Initial segment granularity; segments whose junction tree would
        exceed ``max_clique_states`` are split in half recursively.
    max_clique_states:
        Per-segment clique table budget.
    lookback:
        Levels of upstream logic duplicated into each segment.  The
        duplicated cone re-creates reconvergent correlations close to
        the cut, shrinking the boundary-independence error at the cost
        of larger segments.  0 reproduces the naive scheme.
    boundary:
        ``"independent"`` hands only marginals across cuts (the paper's
        preliminary scheme); ``"tree"`` additionally carries a spanning
        forest of pairwise boundary joints (the paper's future-work
        segmentation, our default).
    enum_input_states:
        When a segment's junction tree would blow the clique budget but
        the segment has few *inputs*, fall back to exact support
        enumeration (:class:`~repro.core.enumeration.EnumerationSegment`)
        instead of splitting it -- deterministic CPTs make the segment's
        joint support only ``4^inputs`` large no matter the treewidth.
        This is the budget on that support size; 0 disables the fallback.
    backend:
        ``"auto"`` (default): junction trees with the enumeration
        fallback.  ``"jt"``: junction trees only (the paper's setup).
        ``"enum"``: every segment is enumerated; the partition greedily
        grows segments along the cone order until the *input-count*
        budget, which typically yields far fewer, larger, exact
        segments on high-treewidth circuits.
    parallelism:
        Worker threads for the segment pipeline.  ``0`` or ``1`` keeps
        the serial path.  ``>= 2`` compiles independent chunks
        concurrently and propagates level-by-level over the segment
        ownership DAG; results are bitwise identical to the serial
        path (each segment sees exactly the same upstream inputs).
    """

    def __init__(
        self,
        circuit: Circuit,
        input_model: Optional[InputModel] = None,
        max_gates_per_segment: int = 60,
        max_clique_states: int = 4 ** 9,
        heuristic: str = "min_fill",
        lookback: int = 3,
        boundary: str = "tree",
        enum_input_states: int = 4 ** 9,
        backend: str = "auto",
        parallelism: int = 0,
        kernel: str = "auto",
    ):
        if max_gates_per_segment < 1:
            raise ValueError("max_gates_per_segment must be >= 1")
        if kernel not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown kernel mode {kernel!r}")
        if lookback < 0:
            raise ValueError("lookback must be >= 0")
        if boundary not in ("independent", "tree"):
            raise ValueError(f"unknown boundary mode {boundary!r}")
        if backend not in ("auto", "jt", "enum"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "enum" and not enum_input_states:
            raise ValueError("backend='enum' requires enum_input_states > 0")
        if parallelism < 0:
            raise ValueError("parallelism must be >= 0")
        self.circuit = circuit
        self.input_model = input_model if input_model is not None else IndependentInputs(0.5)
        self.max_gates_per_segment = max_gates_per_segment
        self.max_clique_states = max_clique_states
        self.heuristic = heuristic
        self.lookback = lookback
        self.boundary = boundary
        self.enum_input_states = enum_input_states
        self.backend = backend
        self.parallelism = parallelism
        self.kernel = kernel
        self._segments: List[Tuple[Circuit, object, set]] = []
        #: per segment: child -> tree parent among that segment's inputs
        self._boundary_trees: List[Dict[str, str]] = []
        #: line -> index of the segment that owns (publishes) it
        self._owner: Dict[str, int] = {}
        self.compile_seconds = 0.0

    # ------------------------------------------------------------------

    def compile(self) -> "SegmentedEstimator":
        """Partition the circuit and compile one junction tree per segment."""
        if self._segments:
            return self
        with get_tracer().span(
            "segmented.compile",
            circuit=self.circuit.name,
            parallelism=self.parallelism,
            backend="segmented",
        ) as span:
            internal = self._cone_clustered_order()
            self._position = {
                ln: i for i, ln in enumerate(self.circuit.topological_order())
            }
            self._cone_cache: Dict[str, frozenset] = {}
            if self.backend == "enum":
                chunks = self._partition_by_inputs(internal)
                compile_fn = self._compile_enum_chunk
            else:
                chunks = [
                    internal[i : i + self.max_gates_per_segment]
                    for i in range(0, len(internal), self.max_gates_per_segment)
                ]
                compile_fn = lambda chunk, label, registry: self._compile_chunk(  # noqa: E731
                    chunk, label, self.lookback, registry
                )
            registry = _SegmentRegistry()
            if self.parallelism > 1 and len(chunks) > 1:
                records = self._compile_chunks_parallel(chunks, compile_fn, registry)
            else:
                for index, chunk in enumerate(chunks):
                    compile_fn(chunk, f"{index}", registry)
                records = registry.records
            self._finalize_segments(records)
            span.annotate(segments=len(self._segments))
            metrics = get_metrics()
            if metrics.enabled:
                metrics.gauge("segmented.segments").set(len(self._segments))
        self.compile_seconds = span.duration
        return self

    def _finalize_segments(self, records) -> None:
        """Install staged records as the global segment tables."""
        self._segments = [(seg, est, owned) for seg, est, owned, _ in records]
        self._boundary_trees = [parent_of for _, _, _, parent_of in records]
        self._owner = {}
        for index, (_, _, owned) in enumerate(self._segments):
            for line in owned:
                self._owner[line] = index

    def _chunk_levels(self, chunks: List[List[str]]) -> List[int]:
        """Dependency level per chunk over the chunk-ownership DAG.

        Chunk ``j`` is a dependency of chunk ``i`` when any line of
        ``i``'s lookback-expanded segment (gates or their sources) is
        owned by ``j``.  The expansion with the *maximum* lookback is
        used, so levels stay conservative even when a budget miss later
        sheds lookback or splits the chunk (sub-chunks only shrink the
        expansion).
        """
        owner_chunk = {
            line: index for index, chunk in enumerate(chunks) for line in chunk
        }
        levels: List[int] = []
        for index, chunk in enumerate(chunks):
            expanded = self._expand_with_lookback(chunk, self.lookback)
            needed = set(expanded)
            for line in expanded:
                needed.update(self.circuit.driver(line).inputs)
            deps = {
                owner_chunk[line]
                for line in needed
                if line in owner_chunk and owner_chunk[line] != index
            }
            levels.append(1 + max((levels[d] for d in deps), default=-1))
        return levels

    def _compile_chunks_parallel(self, chunks, compile_fn, registry):
        """Compile chunks level-by-level with a thread pool.

        Each worker stages its chunk's segments (including any budget
        splits) into a private registry chained to the shared one, so
        sub-chunks of the same chunk see each other exactly as in the
        serial pass.  Staged records merge into the shared registry
        after every level; the final record list is rebuilt in chunk
        order, which reproduces the serial registration order exactly.
        """
        from concurrent.futures import ThreadPoolExecutor

        tracer = get_tracer()
        levels = self._chunk_levels(chunks)
        staged: List[Optional[_SegmentRegistry]] = [None] * len(chunks)
        with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
            for level in range(max(levels) + 1):
                members = [i for i, lv in enumerate(levels) if lv == level]
                with tracer.span(
                    "segmented.compile.level", level=level, chunks=len(members)
                ) as level_span:
                    futures = []
                    for index in members:
                        staged[index] = _SegmentRegistry(base=registry)
                        futures.append(
                            pool.submit(
                                self._compile_chunk_traced,
                                compile_fn,
                                chunks[index],
                                f"{index}",
                                staged[index],
                                level_span,
                            )
                        )
                    for future in futures:
                        future.result()
                    for index in members:
                        for record in staged[index].records:
                            registry.add(*record)
        return [record for reg in staged for record in reg.records]

    def _compile_chunk_traced(self, compile_fn, chunk, label, registry, parent):
        """Run one chunk compile on a worker thread, nesting its spans
        under the level span owned by the coordinating thread."""
        with get_tracer().span("segment.compile", parent=parent, chunk=label):
            compile_fn(chunk, label, registry)

    def _partition_by_inputs(self, order: List[str]) -> List[List[str]]:
        """Greedy cone-order partition bounded by external-input count.

        Enumeration cost is ``4^inputs`` regardless of segment size, so
        segments grow until adding the next gate would push the external
        input set past the budget.
        """
        max_inputs = int(np.log(self.enum_input_states) / np.log(N_STATES))
        chunks: List[List[str]] = []
        current: List[str] = []
        produced: set = set()
        external: set = set()
        for line in order:
            gate = self.circuit.driver(line)
            new_external = {s for s in gate.inputs if s not in produced}
            if current and len(external | new_external) > max_inputs:
                chunks.append(current)
                current = []
                produced = set()
                external = set()
                new_external = set(gate.inputs)
            current.append(line)
            produced.add(line)
            external |= new_external
        if current:
            chunks.append(current)
        return chunks

    def _compile_enum_chunk(
        self, chunk: List[str], label: str, registry: _SegmentRegistry
    ) -> None:
        """Build an enumeration segment for a chunk.

        Like the junction-tree path, upstream logic is duplicated into
        the segment (``lookback`` levels) to regenerate reconvergent
        correlation near the cut; the lookback shrinks until the
        expanded segment's input count fits the enumeration budget (the
        unexpanded chunk always fits by construction).
        """
        from repro.core.enumeration import EnumerationSegment, SegmentTooWide

        owned = set(chunk)
        for lookback in range(self.lookback, -1, -1):
            expanded = self._expand_with_lookback(chunk, lookback)
            sources = {
                src for line in expanded for src in self.circuit.driver(line).inputs
            }
            lines = sorted(expanded | sources, key=self._position.__getitem__)
            segment = self.circuit.subcircuit(
                lines, name=f"{self.circuit.name}.seg{label}"
            )
            placeholder, parent_of = self._placeholder_inputs(segment, registry)
            try:
                estimator = EnumerationSegment(
                    segment,
                    placeholder,
                    max_input_states=self.enum_input_states,
                    keep_lines=owned,
                )
            except SegmentTooWide:
                continue
            registry.add(segment, estimator, owned, parent_of)
            return
        raise AssertionError("unexpanded enum chunk must fit its own budget")

    def _split_segment_inputs(
        self, segment: Circuit
    ) -> Tuple[List[str], List[str]]:
        """A segment's input lines, split into (primary, boundary).

        Primary lines are primary inputs of the full circuit and keep
        the user model's statistics (including correlation CPDs among
        them); boundary lines are driven by upstream segments and carry
        refreshed upstream marginals/conditionals.
        """
        primary = [
            name for name in segment.inputs if self.circuit.driver(name) is None
        ]
        primary_set = set(primary)
        boundary = [name for name in segment.inputs if name not in primary_set]
        return primary, boundary

    def _placeholder_inputs(
        self, segment: Circuit, registry: _SegmentRegistry
    ) -> Tuple[InputModel, Dict[str, str]]:
        """Compile-time input model of a segment.

        The *structure* (which input-to-input CPD edges exist) is baked
        into the segment's LIDAG here; numbers are refreshed at every
        :meth:`_propagate_segment`.  Primary inputs take their CPDs from
        the user model, boundary lines start uniform.
        """
        primary, boundary_lines = self._split_segment_inputs(segment)
        uniform = {name: np.full(N_STATES, 0.25) for name in boundary_lines}
        if self.boundary == "tree":
            parent_of = self._boundary_tree_for(segment.inputs, registry)
            inner: InputModel = TreeBoundaryInputs(uniform, parent_of)
        else:
            parent_of = {}
            inner = FixedMarginalInputs(uniform)
        return _SegmentInputs(self.input_model, primary, inner), parent_of

    def _boundary_tree_for(
        self, inputs: Sequence[str], registry: _SegmentRegistry
    ) -> Dict[str, str]:
        """Spanning forest over segment inputs whose pairwise joints are
        available upstream, weighted by shared-fanin-cone size."""
        import itertools

        import networkx as nx

        by_provider: Dict[int, List[str]] = {}
        providers: Dict[int, object] = {}
        for line in inputs:
            provider = registry.provider_of(line)
            if provider is not None:
                by_provider.setdefault(id(provider), []).append(line)
                providers[id(provider)] = provider

        graph = nx.Graph()
        for key, lines in by_provider.items():
            if len(lines) < 2:
                continue
            provider_estimator = providers[key]
            for a, b in itertools.combinations(lines, 2):
                if self._provider_has_joint(provider_estimator, a, b):
                    weight = self._cone_overlap(a, b)
                    if weight > 0:
                        graph.add_edge(a, b, weight=weight)

        parent_of: Dict[str, str] = {}
        forest = nx.Graph()
        forest.add_edges_from(nx.maximum_spanning_edges(graph, data=False))
        for component in nx.connected_components(forest):
            root = next(iter(component))
            for parent, child in nx.bfs_edges(forest, root):
                parent_of[child] = parent
        return parent_of

    def _cone_overlap(self, a: str, b: str, depth: int = 8) -> int:
        """Size of the shared truncated fanin cone -- a cheap structural
        proxy for the correlation strength of two lines."""
        return len(self._truncated_cone(a, depth) & self._truncated_cone(b, depth))

    def _truncated_cone(self, line: str, depth: int) -> frozenset:
        cached = self._cone_cache.get(line)
        if cached is not None:
            return cached
        cone = {line}
        frontier = {line}
        for _ in range(depth):
            next_frontier = set()
            for ln in frontier:
                gate = self.circuit.driver(ln)
                if gate is not None:
                    next_frontier.update(
                        src for src in gate.inputs if src not in cone
                    )
            cone |= next_frontier
            frontier = next_frontier
        result = frozenset(cone)
        self._cone_cache[line] = result
        return result

    def _cone_clustered_order(self) -> List[str]:
        """Gate-output lines in DFS post-order from the primary outputs.

        Post-order is a valid topological order (a gate's sources always
        precede it) whose contiguous ranges follow output *cones* --
        narrow vertical slices of the circuit -- rather than full-width
        level bands.  Chunking this order keeps per-segment moral-graph
        treewidth near the cone width instead of the circuit width,
        which is what makes large shallow circuits compile.
        """
        visited: set = set()
        order: List[str] = []
        roots = list(self.circuit.outputs) + self.circuit.internal_lines
        for root in roots:
            if root in visited:
                continue
            stack = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if node in visited:
                    continue
                visited.add(node)
                gate = self.circuit.driver(node)
                if gate is None:
                    continue  # primary inputs are not chunked
                stack.append((node, True))
                for src in gate.inputs:
                    if src not in visited:
                        stack.append((src, False))
        return order

    def _expand_with_lookback(self, chunk: List[str], lookback: int) -> set:
        """Chunk lines plus ``lookback`` levels of duplicated upstream gates."""
        expanded = set(chunk)
        frontier = set(chunk)
        for _ in range(lookback):
            next_frontier = set()
            for line in frontier:
                gate = self.circuit.driver(line)
                if gate is None:
                    continue
                for src in gate.inputs:
                    if src not in expanded and self.circuit.driver(src) is not None:
                        next_frontier.add(src)
            expanded |= next_frontier
            frontier = next_frontier
        return expanded

    def _compile_chunk(
        self, chunk: List[str], label: str, lookback: int, registry: _SegmentRegistry
    ) -> None:
        """Compile a chunk of gate-output lines, splitting on budget misses.

        On a budget miss the chunk is halved first (quarter-cost
        retriangulations, lookback accuracy kept); lookback is shed only
        once the chunk is too small to split usefully.  Finalized
        segments register in topological order so downstream chunks can
        see their owners and junction trees.
        """
        owned = set(chunk)
        expanded = self._expand_with_lookback(chunk, lookback)
        sources = {
            src
            for line in expanded
            for src in self.circuit.driver(line).inputs
        }
        lines = sorted(expanded | sources, key=self._position.__getitem__)
        segment = self.circuit.subcircuit(lines, name=f"{self.circuit.name}.seg{label}")
        placeholder, parent_of = self._placeholder_inputs(segment, registry)
        estimator = SwitchingActivityEstimator(
            segment,
            input_model=placeholder,
            heuristic=self.heuristic,
            max_clique_states=self.max_clique_states,
            kernel=self.kernel,
        )
        try:
            estimator.compile()
        except CliqueBudgetExceeded:
            # High treewidth but few inputs: exploit CPT determinism via
            # exact support enumeration rather than lossy splitting.
            if self.enum_input_states:
                from repro.core.enumeration import EnumerationSegment, SegmentTooWide

                try:
                    enum_estimator = EnumerationSegment(
                        segment,
                        placeholder,
                        max_input_states=self.enum_input_states,
                        keep_lines=owned,
                    )
                    registry.add(segment, enum_estimator, owned, parent_of)
                    return
                except SegmentTooWide:
                    pass
            if len(chunk) > 8:
                mid = len(chunk) // 2
                self._compile_chunk(chunk[:mid], label + "a", lookback, registry)
                self._compile_chunk(chunk[mid:], label + "b", lookback, registry)
                return
            if lookback > 0:
                self._compile_chunk(chunk, label, lookback - 1, registry)
                return
            if len(chunk) == 1:
                raise
            mid = len(chunk) // 2
            self._compile_chunk(chunk[:mid], label + "a", 0, registry)
            self._compile_chunk(chunk[mid:], label + "b", 0, registry)
            return
        registry.add(segment, estimator, owned, parent_of)

    def __getstate__(self):
        # The cone cache is a compile-time accelerator that can hold
        # megabytes of frozensets; compiled artifacts never need it.
        state = self.__dict__.copy()
        state.pop("_cone_cache", None)
        return state

    # ------------------------------------------------------------------

    def update_inputs(self, input_model: InputModel) -> None:
        """Swap primary-input statistics without recompiling.

        Segment junction trees are reused as-is; the new statistics
        enter through the boundary refresh at the next :meth:`estimate`
        (only marginals -- and, in tree mode, pairwise joints -- cross
        segment cuts, so input correlation models degrade exactly as
        the paper's segmentation scheme describes).
        """
        self.compile()
        self.input_model = input_model

    def estimate(self) -> SwitchingEstimate:
        """Propagate marginals segment by segment in topological order.

        With ``parallelism >= 2`` the segments propagate level-by-level
        over the ownership DAG: all segments of a level run
        concurrently (their inputs are fully published by lower
        levels), and the published marginals merge between levels.
        Each segment's computation sees exactly the inputs it would see
        serially, so the results are identical.
        """
        self.compile()
        tracer = get_tracer()
        with tracer.span(
            "segmented.propagate",
            circuit=self.circuit.name,
            segments=len(self._segments),
            backend="segmented",
        ) as span:
            known: Dict[str, np.ndarray] = {
                name: self.input_model.marginal_distribution(name)
                for name in self.circuit.inputs
            }
            if self.parallelism > 1 and len(self._segments) > 1:
                from concurrent.futures import ThreadPoolExecutor

                levels = self._segment_levels()
                with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                    for level in range(max(levels) + 1):
                        members = [
                            i for i, lv in enumerate(levels) if lv == level
                        ]
                        with tracer.span(
                            "segmented.propagate.level",
                            level=level,
                            segments=len(members),
                        ) as level_span:
                            published = pool.map(
                                lambda index: self._propagate_segment(
                                    index, known, parent_span=level_span
                                ),
                                members,
                            )
                            for result in published:
                                known.update(result)
            else:
                for index in range(len(self._segments)):
                    known.update(self._propagate_segment(index, known))
        return SwitchingEstimate(
            distributions=known,
            compile_seconds=self.compile_seconds,
            propagate_seconds=span.duration,
            method=(
                Method.SEGMENTED.value
                if len(self._segments) > 1
                else Method.SINGLE_BN.value
            ),
            segments=len(self._segments),
        )

    def estimate_many(
        self, input_models, dtype: str = "float64"
    ) -> List[SwitchingEstimate]:
        """Estimate K input-statistics scenarios in one batched sweep.

        Each junction-tree segment propagates all K scenarios in a
        single vectorized pass (:meth:`SwitchingActivityEstimator.
        estimate_many`); enumeration segments loop their (already
        vectorized) support pass per scenario, caching the pair joints
        downstream boundary trees will need.  The published boundary
        marginals flow between segments as ``(K, 4)`` stacks, composing
        with the ``parallelism`` level pipeline exactly like the
        single-scenario path.  Result ``k`` is bitwise-identical to an
        independent :meth:`estimate` with scenario ``k``'s model (same
        caveat as the engine: identical dirty paths, e.g. fresh
        compiles or sweeps updating every input).  ``self.input_model``
        is not modified.
        """
        models = list(input_models)
        if not models:
            return []
        self.compile()
        k = len(models)
        tracer = get_tracer()
        with tracer.span(
            "segmented.propagate_many",
            circuit=self.circuit.name,
            segments=len(self._segments),
            scenarios=k,
            backend="segmented",
        ) as span:
            known: Dict[str, np.ndarray] = {
                name: np.stack(
                    [m.marginal_distribution(name) for m in models]
                )
                for name in self.circuit.inputs
            }
            #: (provider index, parent, child) -> (K, 4, 4) pair joints
            #: captured during enumeration segments' per-scenario loops
            enum_joints: Dict[Tuple[int, str, str], np.ndarray] = {}
            needed = self._needed_enum_joints()
            if self.parallelism > 1 and len(self._segments) > 1:
                from concurrent.futures import ThreadPoolExecutor

                levels = self._segment_levels()
                with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
                    for level in range(max(levels) + 1):
                        members = [
                            i for i, lv in enumerate(levels) if lv == level
                        ]
                        with tracer.span(
                            "segmented.propagate.level",
                            level=level,
                            segments=len(members),
                        ) as level_span:
                            published = pool.map(
                                lambda index: self._propagate_segment_batch(
                                    index,
                                    known,
                                    models,
                                    needed,
                                    enum_joints,
                                    parent_span=level_span,
                                    dtype=dtype,
                                ),
                                members,
                            )
                            for result in published:
                                known.update(result)
            else:
                for index in range(len(self._segments)):
                    known.update(
                        self._propagate_segment_batch(
                            index, known, models, needed, enum_joints, dtype=dtype
                        )
                    )
        per_scenario = span.duration / k
        method = (
            Method.SEGMENTED.value
            if len(self._segments) > 1
            else Method.SINGLE_BN.value
        )
        return [
            SwitchingEstimate(
                distributions={line: known[line][j] for line in known},
                compile_seconds=self.compile_seconds,
                propagate_seconds=per_scenario,
                method=method,
                segments=len(self._segments),
            )
            for j in range(k)
        ]

    def _needed_enum_joints(self) -> Dict[int, List[Tuple[str, str]]]:
        """Per enumeration segment, the (parent, child) boundary pairs
        downstream tree boundaries will request.  Junction-tree
        providers answer batched joint queries live and need no cache."""
        from repro.core.enumeration import EnumerationSegment

        needed: Dict[int, List[Tuple[str, str]]] = {}
        for parent_of in self._boundary_trees:
            for child, parent in parent_of.items():
                provider_index = self._owner.get(child)
                if provider_index is None:
                    continue
                if not isinstance(
                    self._segments[provider_index][1], EnumerationSegment
                ):
                    continue
                pairs = needed.setdefault(provider_index, [])
                if (parent, child) not in pairs:
                    pairs.append((parent, child))
        return needed

    def _propagate_segment_batch(
        self,
        index: int,
        known: Dict[str, np.ndarray],
        models: List[InputModel],
        needed: Dict[int, List[Tuple[str, str]]],
        enum_joints: Dict[Tuple[int, str, str], np.ndarray],
        parent_span=None,
        dtype: str = "float64",
    ) -> Dict[str, np.ndarray]:
        """Batched counterpart of :meth:`_propagate_segment`.

        ``known`` maps each published line to a ``(K, 4)`` stack; the
        returned dict adds this segment's owned lines in the same
        layout.  ``enum_joints`` collects per-scenario pair joints while
        an enumeration segment's scenario loop runs, because
        :meth:`EnumerationSegment.pair_joint` only reflects the last
        scenario afterwards.
        """
        from repro.core.enumeration import EnumerationSegment

        segment, estimator, owned = self._segments[index]
        k = len(models)
        with get_tracer().span(
            "segment.propagate_many",
            parent=parent_span,
            segment=segment.name,
            scenarios=k,
        ):
            primary, boundary_lines = self._split_segment_inputs(segment)
            parent_of = self._boundary_trees[index]
            conditionals_b: Dict[str, np.ndarray] = {}
            for child, parent in parent_of.items():
                conditionals_b[child] = self._boundary_conditional_batch(
                    child, parent, known[child], enum_joints
                )
            scenario_models: List[InputModel] = []
            for j in range(k):
                priors = {name: known[name][j] for name in boundary_lines}
                if parent_of:
                    boundary: InputModel = TreeBoundaryInputs(
                        priors,
                        parent_of,
                        {child: conditionals_b[child][j] for child in parent_of},
                    )
                else:
                    boundary = FixedMarginalInputs(priors)
                scenario_models.append(
                    _SegmentInputs(models[j], primary, boundary)
                )
            published = [
                line for line in segment.internal_lines if line in owned
            ]
            if isinstance(estimator, EnumerationSegment):
                results = []
                pairs = needed.get(index, [])
                for j, scenario in enumerate(scenario_models):
                    estimator.update_inputs(scenario)
                    results.append(estimator.estimate())
                    for parent, child in pairs:
                        key = (index, parent, child)
                        buffer = enum_joints.get(key)
                        if buffer is None:
                            buffer = enum_joints[key] = np.empty(
                                (k, N_STATES, N_STATES)
                            )
                        buffer[j] = estimator.pair_joint(parent, child)
                return {
                    line: np.stack([r.distributions[line] for r in results])
                    for line in published
                }
            # Junction-tree segment: the stacked API returns (K, 4)
            # stacks directly, skipping K per-scenario dicts that would
            # be re-stacked here anyway.  The extraction set matches the
            # single path's restricted ``estimate(lines=published)``
            # exactly -- a different variable set would regroup the per-
            # clique joint reductions and perturb the last float bit.
            stacks, _ = estimator.estimate_many_stacked(
                scenario_models, published, dtype=dtype
            )
            return {line: stacks[line] for line in published}

    def _boundary_conditional_batch(
        self,
        child: str,
        parent: str,
        child_priors: np.ndarray,
        enum_joints: Dict[Tuple[int, str, str], np.ndarray],
    ) -> np.ndarray:
        """Batched ``P(child | parent)``: a ``(K, 4, 4)`` stack whose
        slice ``k`` mirrors :meth:`_boundary_conditional` for scenario
        ``k`` bitwise (same division, same near-zero-row fallback to
        the child's prior)."""
        from repro.core.enumeration import EnumerationSegment

        provider_index = self._owner[child]
        provider = self._segments[provider_index][1]
        if isinstance(provider, EnumerationSegment):
            joint = enum_joints[(provider_index, parent, child)]
        else:
            joint = provider.junction_tree.joint_marginal_batch([parent, child])
        mass = joint.sum(axis=2)
        ok = mass > 1e-15
        safe = np.where(ok, mass, 1.0)
        rows = joint / safe[:, :, None]
        return np.where(ok[:, :, None], rows, child_priors[:, None, :])

    def reset_propagation(self) -> None:
        """Force every segment's next estimate to be a full pass (see
        :meth:`SwitchingActivityEstimator.reset_propagation`)."""
        for _, estimator, _ in self._segments:
            estimator.reset_propagation()

    def _propagate_segment(
        self,
        index: int,
        known: Dict[str, np.ndarray],
        parent_span=None,
    ) -> Dict[str, np.ndarray]:
        """Refresh one segment's boundary inputs, propagate it, and
        return the distributions of the lines it owns.

        ``known`` is only read (the caller merges the return value), so
        concurrent calls for independent segments are safe.
        ``parent_span`` nests this segment's span under the level span
        when running on a worker thread.
        """
        segment, estimator, owned = self._segments[index]
        with get_tracer().span(
            "segment.propagate", parent=parent_span, segment=segment.name
        ):
            primary, boundary_lines = self._split_segment_inputs(segment)
            priors = {name: known[name] for name in boundary_lines}
            parent_of = self._boundary_trees[index]
            if parent_of:
                conditionals = {
                    child: self._boundary_conditional(
                        child, parent, priors[child]
                    )
                    for child, parent in parent_of.items()
                }
                boundary: InputModel = TreeBoundaryInputs(
                    priors, parent_of, conditionals
                )
            else:
                boundary = FixedMarginalInputs(priors)
            from repro.core.enumeration import EnumerationSegment

            estimator.update_inputs(
                _SegmentInputs(self.input_model, primary, boundary)
            )
            # Only the owned chunk publishes estimates; duplicated
            # lookback gates exist solely to rebuild local correlation.
            # Junction-tree segments extract marginals for exactly the
            # published lines -- anything else would be discarded below.
            published = [
                line for line in segment.internal_lines if line in owned
            ]
            if isinstance(estimator, EnumerationSegment):
                result = estimator.estimate()
            else:
                result = estimator.estimate(lines=published)
        return {line: result.distributions[line] for line in published}

    def _segment_levels(self) -> List[int]:
        """Dependency level per compiled segment: a segment depends on
        the owners of its boundary input lines."""
        levels: List[int] = []
        for index, (segment, _, _) in enumerate(self._segments):
            deps = {
                self._owner[line]
                for line in segment.inputs
                if line in self._owner and self._owner[line] != index
            }
            levels.append(1 + max((levels[d] for d in deps), default=-1))
        return levels

    @staticmethod
    def _provider_has_joint(provider_estimator, a: str, b: str) -> bool:
        """Can the provider supply the joint of two of its lines?"""
        from repro.core.enumeration import EnumerationSegment

        if isinstance(provider_estimator, EnumerationSegment):
            return True  # enumeration can join any pair it retained
        cliques = provider_estimator.junction_tree.cliques
        pair = {a, b}
        return any(pair <= clique for clique in cliques)

    def _boundary_conditional(
        self, child: str, parent: str, child_prior: np.ndarray
    ) -> np.ndarray:
        """``P(child | parent)`` from the provider segment; rows with
        (near-)zero parent probability fall back to the child's marginal."""
        from repro.core.enumeration import EnumerationSegment

        provider = self._segments[self._owner[child]][1]
        if isinstance(provider, EnumerationSegment):
            joint = provider.pair_joint(parent, child)
        else:
            joint = provider.junction_tree.joint_marginal([parent, child]).values
        rows = np.empty((N_STATES, N_STATES))
        for state in range(N_STATES):
            mass = joint[state].sum()
            rows[state] = joint[state] / mass if mass > 1e-15 else child_prior
        return rows

    # ------------------------------------------------------------------

    @property
    def num_segments(self) -> int:
        self.compile()
        return len(self._segments)

    def propagation_counters(self) -> PropagationCounters:
        """Engine work counters summed over every junction-tree segment.

        Enumeration segments do no message passing and contribute
        nothing; before :meth:`compile` the totals are all zero.
        """
        totals = PropagationCounters()
        for _, estimator, _ in self._segments:
            if isinstance(estimator, SwitchingActivityEstimator):
                totals.add(estimator.propagation_counters())
        return totals

    def factor_bytes(self) -> int:
        """Preallocated propagation-buffer bytes summed over segments."""
        return sum(
            estimator.factor_bytes()
            for _, estimator, _ in self._segments
            if isinstance(estimator, SwitchingActivityEstimator)
        )

    def support_stats(self) -> Dict[str, object]:
        """Support-analysis summary aggregated over junction-tree segments.

        Enumeration segments have no clique tables and contribute
        nothing; density is feasible/total over the aggregate.
        """
        self.compile()
        totals = {"cliques": 0, "sparse_cliques": 0, "total_states": 0,
                  "feasible_states": 0}
        for _, estimator, _ in self._segments:
            if not isinstance(estimator, SwitchingActivityEstimator):
                continue
            stats = estimator.support_stats()
            for key in totals:
                totals[key] += stats[key]
        total = totals["total_states"]
        return {
            "kernel": self.kernel,
            **totals,
            "support_density": (
                totals["feasible_states"] / total if total else 1.0
            ),
        }

    def segment_stats(self) -> List[Dict[str, float]]:
        """Junction-tree statistics per segment (for reports/ablations)."""
        from repro.core.enumeration import EnumerationSegment

        self.compile()
        stats = []
        for segment, estimator, owned in self._segments:
            if isinstance(estimator, EnumerationSegment):
                entry = dict(estimator.stats())
                entry["backend"] = "enumeration"
            else:
                entry = dict(estimator.junction_tree.stats())
                entry["backend"] = "junction-tree"
            entry["gates"] = segment.num_gates
            entry["owned_gates"] = len(owned)
            entry["name"] = segment.name
            stats.append(entry)
        return stats
