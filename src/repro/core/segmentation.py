"""Compatibility shim for the historical segmentation module.

The monolithic implementation moved to the :mod:`repro.core.segments`
package (PR 8): :mod:`~repro.core.segments.partition` holds cut
discovery and the segment DAG, :mod:`~repro.core.segments.boundary` the
cross-cut input models, :mod:`~repro.core.segments.refine` the
iterative boundary refinement, and :mod:`~repro.core.segments.estimator`
the :class:`SegmentedEstimator` orchestrating them.  This module
re-exports the public names -- and the historical underscore-prefixed
ones -- so existing imports keep working unchanged.
"""

from repro.core.segments.boundary import (
    BoundaryModel,
    FixedMarginalInputs,
    SegmentInputs,
    TreeBoundaryInputs,
)
from repro.core.segments.estimator import SegmentedEstimator
from repro.core.segments.partition import SegmentGraph, SegmentNode, SegmentRegistry

# Historical private names, kept for callers that reached into them.
_SegmentInputs = SegmentInputs
_SegmentRegistry = SegmentRegistry

__all__ = [
    "BoundaryModel",
    "FixedMarginalInputs",
    "SegmentGraph",
    "SegmentInputs",
    "SegmentNode",
    "SegmentRegistry",
    "SegmentedEstimator",
    "TreeBoundaryInputs",
]
