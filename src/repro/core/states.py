"""The four-state transition algebra.

Each circuit line's random variable takes one of four values encoding
the line's logic value at two consecutive clock cycles::

    x00 = 0 -> 0    x01 = 0 -> 1    x10 = 1 -> 0    x11 = 1 -> 1

This is the paper's key representational move: temporal (lag-1)
correlation is *inside* the state space, so a single static Bayesian
network captures spatio-temporal dependence.  The switching activity of
a line is ``P(x01) + P(x10)``.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Sequence

import numpy as np

#: Number of transition states per line variable.
N_STATES = 4

#: Human-readable state names, indexed by state value.
STATE_NAMES = ("x00", "x01", "x10", "x11")


class TransitionState(IntEnum):
    """Transition of a line between clock t-1 and clock t."""

    X00 = 0
    X01 = 1
    X10 = 2
    X11 = 3

    @classmethod
    def from_pair(cls, previous: int, current: int) -> "TransitionState":
        """Encode (value at t-1, value at t) as a transition state."""
        return cls((int(bool(previous)) << 1) | int(bool(current)))

    @property
    def previous_value(self) -> int:
        """The line's logic value at t-1."""
        return (self.value >> 1) & 1

    @property
    def current_value(self) -> int:
        """The line's logic value at t."""
        return self.value & 1

    @property
    def is_switch(self) -> bool:
        """True for the two toggling states x01 and x10."""
        return self.previous_value != self.current_value

    def __str__(self) -> str:
        return STATE_NAMES[self.value]


def previous_values(states: np.ndarray) -> np.ndarray:
    """Vectorized t-1 value extraction."""
    return (np.asarray(states) >> 1) & 1


def current_values(states: np.ndarray) -> np.ndarray:
    """Vectorized t value extraction."""
    return np.asarray(states) & 1


def encode_pairs(previous: np.ndarray, current: np.ndarray) -> np.ndarray:
    """Vectorized (t-1, t) -> state encoding."""
    return (np.asarray(previous).astype(np.int64) << 1) | np.asarray(current).astype(
        np.int64
    )


def switching_probability(distribution: Sequence[float]) -> float:
    """Switching activity from a 4-state distribution: P(x01) + P(x10)."""
    dist = np.asarray(distribution, dtype=np.float64)
    if dist.shape != (N_STATES,):
        raise ValueError(f"expected a length-{N_STATES} distribution, got {dist.shape}")
    return float(dist[TransitionState.X01] + dist[TransitionState.X10])


def signal_probability(distribution: Sequence[float], at: str = "current") -> float:
    """P(line = 1) at t (``"current"``) or t-1 (``"previous"``)."""
    dist = np.asarray(distribution, dtype=np.float64)
    if dist.shape != (N_STATES,):
        raise ValueError(f"expected a length-{N_STATES} distribution, got {dist.shape}")
    if at == "current":
        return float(dist[TransitionState.X01] + dist[TransitionState.X11])
    if at == "previous":
        return float(dist[TransitionState.X10] + dist[TransitionState.X11])
    raise ValueError("at must be 'current' or 'previous'")


def independent_transition_distribution(p_one: float) -> np.ndarray:
    """4-state distribution of a temporally *independent* stream.

    Consecutive values are i.i.d. Bernoulli(``p_one``), so e.g.
    ``P(x01) = (1 - p) p``.  This is the model behind the paper's
    "random input streams" experiments.
    """
    if not 0.0 <= p_one <= 1.0:
        raise ValueError(f"p_one must be in [0, 1], got {p_one}")
    q = 1.0 - p_one
    return np.array([q * q, q * p_one, p_one * q, p_one * p_one])


def markov_transition_distribution(p_one: float, activity: float) -> np.ndarray:
    """4-state distribution of a stationary lag-1 Markov stream.

    Parameters
    ----------
    p_one:
        Stationary probability of the line being 1.
    activity:
        Desired switching activity ``P(x01) + P(x10)``.  Stationarity
        forces ``P(x01) = P(x10) = activity / 2``; feasibility requires
        ``activity / 2 <= min(p_one, 1 - p_one)``.

    Returns
    -------
    ``[P(x00), P(x01), P(x10), P(x11)]``.
    """
    if not 0.0 <= p_one <= 1.0:
        raise ValueError(f"p_one must be in [0, 1], got {p_one}")
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity must be in [0, 1], got {activity}")
    half = activity / 2.0
    if half > min(p_one, 1.0 - p_one) + 1e-12:
        raise ValueError(
            f"activity {activity} infeasible for p_one {p_one}: "
            f"need activity/2 <= min(p, 1-p)"
        )
    return np.array(
        [1.0 - p_one - half, half, half, p_one - half]
    ).clip(min=0.0)
