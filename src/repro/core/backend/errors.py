"""Exceptions of the inference-backend layer.

This module is import-light on purpose: it is the home of errors that
both the low-level engines (:mod:`repro.bayesian.junction`) and the
high-level facade need, so it must not import either.
"""

from __future__ import annotations

__all__ = ["ArtifactSchemaError", "CliqueBudgetExceeded", "UnknownBackendError"]


class CliqueBudgetExceeded(RuntimeError):
    """The triangulation produced a clique whose table would exceed the
    caller's state-space budget.  Raised *before* any table is
    materialized; callers fall back to segmentation (the ``"auto"``
    backend does this automatically)."""


class UnknownBackendError(KeyError):
    """No backend is registered under the requested name."""


class ArtifactSchemaError(RuntimeError):
    """A serialized :class:`~repro.core.backend.base.CompiledModel` has
    a missing or incompatible schema tag and cannot be loaded."""
