"""Exceptions of the inference-backend layer.

As of the correctness-hardening PR these classes live in the
consolidated :mod:`repro.errors` hierarchy; this module re-exports them
so existing ``from repro.core.backend.errors import ...`` imports keep
resolving to the same objects.  It stays import-light on purpose: both
the low-level engines (:mod:`repro.bayesian.junction`) and the
high-level facade import it, so it must not import either.
"""

from __future__ import annotations

from repro.errors import (
    ArtifactSchemaError,
    CliqueBudgetExceeded,
    UnknownBackendError,
)

__all__ = ["ArtifactSchemaError", "CliqueBudgetExceeded", "UnknownBackendError"]
