"""Backend registry: name -> :class:`~repro.core.backend.base.Backend`.

The built-in backends register on import; external code can add its
own with :func:`register_backend` (e.g. an experimental sampler) and
everything downstream -- the facade, the CLI, the compile cache --
picks it up by name.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.backend.backends import (
    AutoBackend,
    BaselineBackend,
    EnumerationBackend,
    JunctionTreeBackend,
    SegmentedBackend,
)
from repro.core.backend.base import Backend
from repro.core.backend.errors import UnknownBackendError

__all__ = ["available_backends", "get_backend", "register_backend"]

_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register ``backend`` under its ``name``.

    Re-registering an existing name requires ``replace=True`` so typos
    do not silently shadow a built-in.
    """
    if not backend.name:
        raise ValueError("backend has no name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {backend.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


for _backend in (
    AutoBackend(),
    JunctionTreeBackend(),
    SegmentedBackend(),
    EnumerationBackend(),
    BaselineBackend("pairwise"),
    BaselineBackend("local-cone"),
    BaselineBackend("independence"),
    BaselineBackend("monte-carlo"),
    BaselineBackend("simulation"),
):
    register_backend(_backend)
del _backend
