"""Concrete inference backends.

Seven entry points used to be scattered across the codebase --
:class:`~repro.core.estimator.SwitchingActivityEstimator`,
:class:`~repro.core.segmentation.SegmentedEstimator`,
:func:`~repro.core.estimator.exact_switching_by_enumeration`, and the
four :mod:`repro.baselines` estimators.  They are all query strategies
over the same LIDAG switching model (Tucci: even BDD-style evaluation
is a special case of Bayesian-network inference), so they live here
behind one :class:`~repro.core.backend.base.Backend` surface:

- ``"junction-tree"`` -- single-BN exact inference (the paper's method),
- ``"segmented"``     -- multiple-BN estimation for large circuits,
- ``"enumeration"``   -- exact support enumeration (the oracle),
- ``"auto"``          -- junction tree under the clique budget, falling
  back to segmentation on :class:`CliqueBudgetExceeded` (what the CLI
  and the experiments use),
- ``"pairwise"``, ``"local-cone"``, ``"independence"``,
  ``"monte-carlo"``, ``"simulation"`` -- adapters over the classical
  baseline estimators, so comparisons run through the same facade.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.circuits.netlist import Circuit
from repro.core.backend.base import Backend, CompiledModel, Method
from repro.core.backend.errors import CliqueBudgetExceeded
from repro.core.estimator import SwitchingActivityEstimator, SwitchingEstimate
from repro.core.inputs import IndependentInputs, InputModel
from repro.errors import ZeroBeliefError
from repro.core.segmentation import SegmentedEstimator
from repro.obs.trace import get_tracer

__all__ = [
    "AutoBackend",
    "BaselineBackend",
    "BaselineCompiledModel",
    "EnumerationBackend",
    "EstimatorCompiledModel",
    "JunctionTreeBackend",
    "SegmentedBackend",
]


class EstimatorCompiledModel(CompiledModel):
    """Artifact wrapping a compiled estimator.

    Works for every estimator exposing ``update_inputs`` +
    ``estimate`` (single-BN, segmented, enumeration); the junction-tree
    structure, propagation schedules, and clique potentials pickle with
    the estimator, so a loaded artifact re-propagates without paying
    the compile again.
    """

    def __init__(self, backend_name: str, circuit: Circuit, estimator):
        super().__init__(backend_name, circuit)
        self.estimator = estimator

    def query(self, inputs: Optional[InputModel] = None) -> SwitchingEstimate:
        with get_tracer().span(
            "backend.query", backend=self.backend_name, circuit=self.circuit.name
        ):
            if inputs is not None:
                self.estimator.update_inputs(inputs)
            return self.estimator.estimate()

    def query_many(
        self,
        inputs_list: "list[InputModel]",
        batch_size: Optional[int] = None,
        dtype: Optional[str] = None,
        sweep_mode: Optional[str] = None,
    ) -> "list[SwitchingEstimate]":
        """Vectorized sweep: K scenarios through one batched propagation.

        Delegates to the estimator's ``estimate_many`` (single-BN and
        segmented estimators propagate the whole chunk in one engine
        pass; enumeration loops internally).  ``batch_size`` caps the
        scenarios per pass -- batched propagation memory is
        ``batch_size x`` the single-query engine footprint.
        ``dtype="float32"`` runs propagating estimators' batch buffers
        in float32 (ignored by estimators without a dtype knob).
        ``sweep_mode`` forwards the delta-sweep planner selection to
        estimators that accept it (ignored elsewhere); note the planner
        sees one chunk at a time, so dedup/chaining only spans scenarios
        within the same ``batch_size`` chunk.

        A :class:`ZeroBeliefError` escaping a chunk is re-raised with
        its ``batch_indices`` rebased to the *caller's* scenario
        numbering: the estimator only ever sees one chunk, so its
        indices are chunk-local, and reporting those for any chunk but
        the first would point the caller at the wrong scenarios.
        """
        models = list(inputs_list)
        if not models:
            return []
        estimate_many = getattr(self.estimator, "estimate_many", None)
        if estimate_many is None:
            return super().query_many(models, batch_size=batch_size)
        # Only forward non-default knobs, and only to estimators that
        # take them (EnumerationSegment.estimate_many takes neither).
        kwargs = {}
        if dtype is not None and dtype != "float64":
            import inspect

            if "dtype" in inspect.signature(estimate_many).parameters:
                kwargs["dtype"] = dtype
        if sweep_mode is not None and sweep_mode != "batched":
            import inspect

            if "sweep_mode" in inspect.signature(estimate_many).parameters:
                kwargs["sweep_mode"] = sweep_mode
        chunk = len(models) if not batch_size or batch_size < 1 else batch_size
        results: "list[SwitchingEstimate]" = []
        with get_tracer().span(
            "backend.query_many",
            backend=self.backend_name,
            circuit=self.circuit.name,
            scenarios=len(models),
            batch=chunk,
        ):
            for start in range(0, len(models), chunk):
                try:
                    results.extend(
                        estimate_many(models[start : start + chunk], **kwargs)
                    )
                except ZeroBeliefError as err:
                    local = getattr(err, "batch_indices", None)
                    if local:
                        err.batch_indices = tuple(start + i for i in local)
                        err.args = (
                            "cannot normalize a zero belief for batch "
                            f"elements {list(err.batch_indices)}",
                        ) + err.args[1:]
                    raise
        return results

    @property
    def compile_seconds(self) -> float:
        return getattr(self.estimator, "compile_seconds", 0.0)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        if isinstance(self.estimator, SegmentedEstimator):
            info["segments"] = self.estimator.num_segments
        return info


class JunctionTreeBackend(Backend):
    """Single Bayesian network compiled to one junction tree (exact)."""

    name = "junction-tree"

    def compile(
        self,
        circuit: Circuit,
        inputs: Optional[InputModel] = None,
        heuristic: str = "min_fill",
        max_clique_states: Optional[int] = 4 ** 10,
        kernel: str = "auto",
    ) -> EstimatorCompiledModel:
        estimator = SwitchingActivityEstimator(
            circuit,
            input_model=inputs,
            heuristic=heuristic,
            max_clique_states=max_clique_states,
            kernel=kernel,
        ).compile()
        return EstimatorCompiledModel(self.name, circuit, estimator)


class SegmentedBackend(Backend):
    """Multiple-BN estimation for circuits beyond one clique budget."""

    name = "segmented"

    def compile(
        self,
        circuit: Circuit,
        inputs: Optional[InputModel] = None,
        max_gates_per_segment: int = 60,
        max_clique_states: int = 4 ** 9,
        heuristic: str = "min_fill",
        lookback: int = 3,
        boundary: str = "tree",
        enum_input_states: int = 4 ** 9,
        segment_backend: str = "auto",
        parallelism: int = 0,
        kernel: str = "auto",
        refine: int = 0,
        refine_tol: float = 1e-5,
        max_iters: "Optional[int]" = None,
    ) -> EstimatorCompiledModel:
        estimator = SegmentedEstimator(
            circuit,
            input_model=inputs,
            max_gates_per_segment=max_gates_per_segment,
            max_clique_states=max_clique_states,
            heuristic=heuristic,
            lookback=lookback,
            boundary=boundary,
            enum_input_states=enum_input_states,
            backend=segment_backend,
            parallelism=parallelism,
            kernel=kernel,
            refine=refine,
            refine_tol=refine_tol,
            max_iters=max_iters,
        ).compile()
        return EstimatorCompiledModel(self.name, circuit, estimator)


class EnumerationBackend(Backend):
    """Exact support enumeration over the whole circuit (the oracle).

    Deterministic gate CPTs make the joint support ``4^inputs`` no
    matter the treewidth; raises
    :class:`~repro.core.enumeration.SegmentTooWide` past the budget.
    """

    name = "enumeration"

    def compile(
        self,
        circuit: Circuit,
        inputs: Optional[InputModel] = None,
        max_input_states: int = 4 ** 9,
    ) -> EstimatorCompiledModel:
        from repro.core.enumeration import EnumerationSegment

        model = inputs if inputs is not None else IndependentInputs(0.5)
        estimator = EnumerationSegment(
            circuit, model, max_input_states=max_input_states
        )
        return EstimatorCompiledModel(self.name, circuit, estimator)


class AutoBackend(Backend):
    """Junction tree when it fits the clique budget, else segmentation.

    Reproduces the selection the experiments have always used: circuits
    up to ``max_gates_per_segment`` gates try a single BN first (which
    also preserves input-correlation models exactly); the budget
    defaults to ``4^10`` and tightens to ``4^9`` past 2000 gates.
    """

    name = "auto"

    def compile(
        self,
        circuit: Circuit,
        inputs: Optional[InputModel] = None,
        max_gates_per_segment: int = 60,
        lookback: int = 3,
        max_clique_states: Optional[int] = None,
        boundary: str = "tree",
        heuristic: str = "min_fill",
        parallelism: int = 0,
        kernel: str = "auto",
        refine: int = 0,
        refine_tol: float = 1e-5,
        max_iters: "Optional[int]" = None,
    ) -> EstimatorCompiledModel:
        if max_clique_states is None:
            max_clique_states = 4 ** 9 if circuit.num_gates > 2000 else 4 ** 10
        if circuit.num_gates <= max_gates_per_segment:
            try:
                return JunctionTreeBackend().compile(
                    circuit,
                    inputs,
                    heuristic=heuristic,
                    max_clique_states=max_clique_states,
                    kernel=kernel,
                )
            except CliqueBudgetExceeded:
                pass
        return SegmentedBackend().compile(
            circuit,
            inputs,
            max_gates_per_segment=max_gates_per_segment,
            max_clique_states=max_clique_states,
            heuristic=heuristic,
            lookback=lookback,
            boundary=boundary,
            parallelism=parallelism,
            kernel=kernel,
            refine=refine,
            refine_tol=refine_tol,
            max_iters=max_iters,
        )


# ----------------------------------------------------------------------
# Baseline adapters
# ----------------------------------------------------------------------


def _pairwise_runner(circuit, model, options):
    from repro.baselines.pairwise import pairwise_switching

    result = pairwise_switching(circuit, model)
    # The pairwise model reports (p, activity) per line; reconstruct the
    # 4-state distribution they pin down: P(x01) = P(x10) = a/2, with
    # the remaining mass split by the signal probability.
    distributions = {}
    for line, activity in result.activities.items():
        p = result.signal_probabilities[line]
        half = activity / 2.0
        distributions[line] = np.clip(
            np.array([1.0 - p - half, half, half, p - half]), 0.0, 1.0
        )
    return distributions


def _local_cone_runner(circuit, model, options):
    from repro.baselines.local import local_cone_switching

    result = local_cone_switching(
        circuit,
        model,
        depth=options.get("depth", 3),
        max_cut_inputs=options.get("max_cut_inputs", 6),
    )
    return result.distributions


def _independence_runner(circuit, model, options):
    from repro.baselines.independent import independence_switching

    return independence_switching(circuit, model).distributions


def _monte_carlo_runner(circuit, model, options):
    from repro.baselines.montecarlo import monte_carlo_switching

    result = monte_carlo_switching(
        circuit,
        model,
        relative_error=options.get("relative_error", 0.01),
        max_pairs=options.get("max_pairs", 500_000),
        rng=np.random.default_rng(options.get("seed", 0)),
    )
    return result.distributions


def _simulation_runner(circuit, model, options):
    from repro.baselines.simulation import simulate_switching

    result = simulate_switching(
        circuit,
        model,
        n_pairs=options.get("n_pairs", 100_000),
        rng=np.random.default_rng(options.get("seed", 0)),
    )
    return result.distributions


class BaselineCompiledModel(CompiledModel):
    """Compile-free artifact: the whole estimator runs per query."""

    def __init__(
        self,
        backend_name: str,
        circuit: Circuit,
        method: Method,
        options: Dict[str, Any],
    ):
        super().__init__(backend_name, circuit)
        self.method = method
        self.options = dict(options)

    def query(self, inputs: Optional[InputModel] = None) -> SwitchingEstimate:
        model = inputs if inputs is not None else IndependentInputs(0.5)
        runner = _BASELINE_RUNNERS[self.backend_name]
        with get_tracer().span(
            "backend.query", backend=self.backend_name, circuit=self.circuit.name
        ):
            start = time.perf_counter()
            distributions = runner(self.circuit, model, self.options)
            elapsed = time.perf_counter() - start
        return SwitchingEstimate(
            distributions={
                line: np.asarray(dist, dtype=np.float64)
                for line, dist in distributions.items()
            },
            compile_seconds=0.0,
            propagate_seconds=elapsed,
            method=self.method.value,
            segments=0,
        )


_BASELINE_RUNNERS: Dict[str, Callable] = {
    "pairwise": _pairwise_runner,
    "local-cone": _local_cone_runner,
    "independence": _independence_runner,
    "monte-carlo": _monte_carlo_runner,
    "simulation": _simulation_runner,
}

_BASELINE_METHODS: Dict[str, Method] = {
    "pairwise": Method.PAIRWISE,
    "local-cone": Method.LOCAL_CONE,
    "independence": Method.INDEPENDENCE,
    "monte-carlo": Method.MONTE_CARLO,
    "simulation": Method.SIMULATION,
}


class BaselineBackend(Backend):
    """Adapter exposing one classical estimator through the facade.

    These backends have no compile state worth caching -- ``compile``
    just freezes the options -- but going through the same interface
    lets comparisons (Table 2) swap methods with one string.
    """

    def __init__(self, name: str):
        if name not in _BASELINE_RUNNERS:
            raise ValueError(f"unknown baseline {name!r}")
        self.name = name

    def compile(
        self,
        circuit: Circuit,
        inputs: Optional[InputModel] = None,
        **options: Any,
    ) -> BaselineCompiledModel:
        return BaselineCompiledModel(
            self.name, circuit, _BASELINE_METHODS[self.name], options
        )
