"""Unified inference-backend layer.

One interface over every way this codebase answers "how often does
each line switch?":

- :class:`~repro.core.backend.base.Backend` + the registry
  (:func:`get_backend`, :func:`register_backend`,
  :func:`available_backends`),
- the serializable :class:`~repro.core.backend.base.CompiledModel`
  artifact (``save``/``load`` with a schema version),
- the :class:`~repro.core.backend.cache.CompileCache` keyed by netlist
  hash + backend + options + schema version,
- the facade (:func:`estimate`, :func:`compile_model`) everything else
  in the repo calls.

The light modules (:mod:`errors <repro.core.backend.errors>`,
:mod:`base <repro.core.backend.base>`) import eagerly so the engine
layers can depend on them; the heavy ones (backends, registry, cache,
facade) load lazily on first attribute access to keep
``repro.bayesian`` / ``repro.core`` imports cycle-free.
"""

from __future__ import annotations

from repro.core.backend.base import (
    ARTIFACT_SCHEMA,
    ARTIFACT_SCHEMA_VERSION,
    Backend,
    CompiledModel,
    Method,
)
from repro.core.backend.errors import (
    ArtifactSchemaError,
    CliqueBudgetExceeded,
    UnknownBackendError,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactSchemaError",
    "Backend",
    "CacheEntry",
    "CliqueBudgetExceeded",
    "CompileCache",
    "CompiledModel",
    "Method",
    "UnknownBackendError",
    "available_backends",
    "circuit_fingerprint",
    "compile_fingerprint",
    "compile_model",
    "default_cache_dir",
    "estimate",
    "estimate_many",
    "get_backend",
    "input_structure_signature",
    "register_backend",
]

#: lazily-resolved attribute -> defining submodule (PEP 562)
_LAZY = {
    "CacheEntry": "repro.core.backend.cache",
    "CompileCache": "repro.core.backend.cache",
    "available_backends": "repro.core.backend.registry",
    "circuit_fingerprint": "repro.core.backend.cache",
    "compile_fingerprint": "repro.core.backend.cache",
    "compile_model": "repro.core.backend.facade",
    "default_cache_dir": "repro.core.backend.cache",
    "estimate": "repro.core.backend.facade",
    "estimate_many": "repro.core.backend.facade",
    "get_backend": "repro.core.backend.registry",
    "input_structure_signature": "repro.core.backend.cache",
    "register_backend": "repro.core.backend.registry",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
