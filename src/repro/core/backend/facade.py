"""The one front door of the estimation stack.

Every consumer -- CLI subcommands, the experiment scripts, benchmarks,
library users -- estimates switching activity through two functions::

    from repro import estimate

    result = estimate(circuit, inputs, backend="auto")

or, when the compile should be reused across queries or processes::

    from repro import compile_model

    model = compile_model(circuit, backend="junction-tree", cache=True)
    result = model.query(inputs)

``cache`` accepts ``None``/``False`` (no cache), ``True`` (the default
on-disk location), a directory path, or a
:class:`~repro.core.backend.cache.CompileCache` instance.

Both entry points run the :mod:`repro.core.validate` pass first, so a
malformed circuit or input model fails with a typed
:class:`~repro.errors.ReproError` before any backend work starts.
:func:`estimate` additionally supports *graceful degradation*: a
``fallback`` chain of backend names tried in order whenever a backend
raises a typed :class:`~repro.errors.CompileError` (or a
:class:`~repro.errors.PropagationError` at query time), plus an
optional wall-clock ``budget_seconds`` that, once exhausted, jumps
straight to the chain's last (cheapest) entry.  Every degradation step
increments the ``estimate.fallback`` obs counter and is surfaced on
``SwitchingEstimate.fallbacks``.
"""

from __future__ import annotations

import inspect
import os
import time
from typing import Any, Optional, Sequence, Tuple, Union

from repro.circuits.netlist import Circuit
from repro.core.backend.base import CompiledModel
from repro.core.backend.cache import CompileCache, compile_fingerprint
from repro.core.backend.registry import get_backend
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.rcache import ResultCache, scenario_digest
from repro.core.validate import validate as validate_pass
from repro.errors import CompileError, FallbackExhausted, PropagationError
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

__all__ = ["DEFAULT_FALLBACK_CHAIN", "compile_model", "estimate", "estimate_many"]

CacheSpec = Union[None, bool, str, os.PathLike, CompileCache]
FallbackSpec = Union[None, bool, str, Sequence[str]]
ResultCacheSpec = Union[None, bool, int, ResultCache]

#: The degradation ladder used by ``fallback=True``: exact single-BN
#: first, the segmented approximation next, and the cheap local-cone
#: baseline as the last resort that always compiles.
DEFAULT_FALLBACK_CHAIN: Tuple[str, ...] = (
    "junction-tree",
    "segmented",
    "local-cone",
)


def resolve_cache(cache: CacheSpec) -> Optional[CompileCache]:
    """Normalize the ``cache`` argument to a :class:`CompileCache`."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return CompileCache()
    if isinstance(cache, CompileCache):
        return cache
    return CompileCache(cache)


def resolve_result_cache(result_cache: ResultCacheSpec) -> Optional[ResultCache]:
    """Normalize the ``result_cache`` argument to a :class:`ResultCache`.

    ``None``/``False`` disable result caching, ``True`` builds a cache
    with the default capacity, an ``int`` sets ``max_entries``, and a
    :class:`ResultCache` instance is used as-is (share one across calls
    to actually get hits).
    """
    if result_cache is None or result_cache is False:
        return None
    if result_cache is True:
        return ResultCache()
    if isinstance(result_cache, ResultCache):
        return result_cache
    return ResultCache(max_entries=int(result_cache))


def _result_key(
    circuit: Circuit,
    backend: str,
    inputs: Optional[InputModel],
    options: dict,
    query_inputs: InputModel,
) -> Tuple[str, str]:
    """``(compile fingerprint, scenario digest)`` result-cache key.

    The fingerprint half is exactly the compile-cache content key of
    the *requested* backend and options, so anything that would have
    produced a different compiled model (circuit edit, backend or
    option change, input-structure change, artifact schema bump) also
    misses the result cache.
    """
    backend_obj = get_backend(backend)
    fingerprint = compile_fingerprint(
        circuit,
        backend_obj.name,
        inputs,
        backend_obj.cache_token(**options),
    )
    return fingerprint, scenario_digest(circuit, query_inputs)


def _replay_result(payload: dict, compiled_cache_hit: Optional[bool] = None):
    """Materialize a cached payload as a fresh :class:`SwitchingEstimate`."""
    from repro.core.rcache import replay_estimate

    result = replay_estimate(payload)
    result.cache_hit = compiled_cache_hit
    return result


def _resolve_chain(backend: str, fallback: FallbackSpec) -> Tuple[str, ...]:
    """The ordered list of backends :func:`estimate` may try."""
    if fallback is None or fallback is False:
        return (backend,)
    if fallback is True:
        extra = DEFAULT_FALLBACK_CHAIN
    elif isinstance(fallback, str):
        extra = (fallback,)
    else:
        extra = tuple(fallback)
    chain = [backend]
    for name in extra:
        if name not in chain:
            chain.append(name)
    return tuple(chain)


def _record_fallback(backend_name: str, reason: str) -> None:
    registry = get_metrics()
    if registry.enabled:
        registry.counter("estimate.fallback").inc(1)


def _supported_options(backend_name: str, options: dict) -> dict:
    """Restrict ``options`` to what a backend's ``compile`` accepts.

    Chain entries have different compile signatures (the junction-tree
    budget knob means nothing to the enumeration oracle); a degradation
    step must not die on a ``TypeError`` for an option that only
    applied to an earlier entry.
    """
    if not options:
        return options
    sig = inspect.signature(get_backend(backend_name).compile)
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in sig.parameters.values()
    ):
        return options
    return {k: v for k, v in options.items() if k in sig.parameters}


def compile_model(
    circuit: Circuit,
    inputs: Optional[InputModel] = None,
    backend: str = "auto",
    cache: CacheSpec = None,
    validate: bool = True,
    **options: Any,
) -> CompiledModel:
    """Compile ``circuit`` with the named backend, via the cache if any.

    Returns a :class:`~repro.core.backend.base.CompiledModel` whose
    ``cache_hit`` attribute records how it was obtained (``None`` when
    no cache was consulted).  ``validate=False`` skips the strict
    validation pass (used internally when the caller already ran it).
    """
    backend_obj = get_backend(backend)
    if validate:
        validate_pass(circuit, inputs)
    cache_obj = resolve_cache(cache)
    key = None
    if cache_obj is not None:
        key = cache_obj.key_for(
            circuit,
            backend_obj.name,
            inputs,
            backend_obj.cache_token(**options),
        )
        model = cache_obj.get(key)
        if model is not None:
            model.cache_hit = True
            return model
    with get_tracer().span(
        "backend.compile",
        backend=backend_obj.name,
        circuit=circuit.name,
        cache="miss" if cache_obj is not None else "off",
    ):
        model = backend_obj.compile(circuit, inputs, **options)
    if cache_obj is not None:
        cache_obj.put(key, model)
        model.cache_hit = False
    return model


def estimate(
    circuit: Circuit,
    inputs: Optional[InputModel] = None,
    backend: str = "auto",
    cache: CacheSpec = None,
    fallback: FallbackSpec = None,
    budget_seconds: Optional[float] = None,
    validate: bool = True,
    result_cache: ResultCacheSpec = None,
    **options: Any,
):
    """Estimate switching activity in one call.

    Compiles (or cache-loads) a model and queries it with ``inputs``
    (default: independent fair-coin inputs, applied explicitly so a
    cached artifact never leaks the statistics it was compiled with).

    Parameters
    ----------
    result_cache:
        Optional :class:`~repro.core.rcache.ResultCache` (or ``True`` /
        max-entry count).  An exact repeat of a prior request -- same
        compile fingerprint, same canonical scenario digest -- replays
        the stored marginals bitwise-identically without propagating;
        the returned estimate carries ``result_cache_hit=True``.  Only
        clean results are stored: an estimate produced through a
        degradation step (``fallbacks`` nonempty, which may depend on
        ``budget_seconds`` wall-clock) is never cached.
    fallback:
        ``True`` for the default degradation chain
        (:data:`DEFAULT_FALLBACK_CHAIN`), or a backend name / sequence
        of names to try after ``backend``.  Each attempt that fails
        with a typed :class:`~repro.errors.CompileError` or
        :class:`~repro.errors.PropagationError` advances the chain;
        when every entry fails, :class:`~repro.errors.FallbackExhausted`
        is raised from the last failure.  Without ``fallback``, the
        first failure propagates unchanged.
    budget_seconds:
        Optional wall-clock budget.  Once exceeded, remaining chain
        entries are skipped and the *last* entry (the cheapest
        degradation) is used directly.
    """
    chain = _resolve_chain(backend, fallback)
    if validate:
        validate_pass(circuit, inputs)
    query_inputs = inputs if inputs is not None else IndependentInputs(0.5)
    rcache_obj = resolve_result_cache(result_cache)
    rkey = None
    if rcache_obj is not None:
        rkey = _result_key(circuit, backend, inputs, options, query_inputs)
        payload = rcache_obj.get(rkey)
        if payload is not None:
            return _replay_result(payload)
    start = time.perf_counter()
    events: list = []
    last_error: Optional[Exception] = None
    i = 0
    while i < len(chain):
        name = chain[i]
        is_last = i == len(chain) - 1
        if (
            not is_last
            and budget_seconds is not None
            and time.perf_counter() - start > budget_seconds
        ):
            events.append((name, "budget exhausted"))
            _record_fallback(name, "budget exhausted")
            i = len(chain) - 1
            continue
        try:
            opts = options if len(chain) == 1 else _supported_options(name, options)
            model = compile_model(
                circuit,
                inputs,
                backend=name,
                cache=cache,
                validate=False,
                **opts,
            )
            result = model.query(query_inputs)
        except (CompileError, PropagationError) as exc:
            if len(chain) == 1:
                raise
            last_error = exc
            reason = f"{type(exc).__name__}: {exc}"
            if is_last:
                raise FallbackExhausted(
                    f"{circuit.name}: every backend in the fallback chain "
                    f"{list(chain)} failed (last: {reason})"
                ) from last_error
            events.append((name, reason))
            _record_fallback(name, reason)
            i += 1
            continue
        result.fallbacks = tuple(events)
        result.cache_hit = model.cache_hit
        if rcache_obj is not None:
            result.result_cache_hit = False
            if not events:
                rcache_obj.put(rkey, result)
        return result
    raise FallbackExhausted(  # pragma: no cover - chain is never empty
        f"{circuit.name}: empty fallback chain"
    )


def estimate_many(
    circuit: Circuit,
    inputs_list: Sequence[InputModel],
    backend: str = "auto",
    cache: CacheSpec = None,
    batch_size: Optional[int] = None,
    validate: bool = True,
    dtype: Optional[str] = None,
    sweep_mode: Optional[str] = None,
    result_cache: ResultCacheSpec = None,
    **options: Any,
):
    """Sweep K input-statistics scenarios against one compile.

    The batched counterpart of :func:`estimate`: the circuit is
    compiled (or cache-loaded) exactly once, then every scenario in
    ``inputs_list`` is queried through
    :meth:`~repro.core.backend.base.CompiledModel.query_many`, which
    the exact backends answer with a single vectorized propagation per
    batch.  Returns one ``SwitchingEstimate`` per scenario, in order.

    Every scenario must induce the same input-to-input edge structure
    as the first one (the structure is baked into the compile).
    ``batch_size`` chunks the sweep to bound propagation memory
    (``batch_size x`` the single-query engine footprint); ``None``
    propagates all K scenarios in one batch.  ``dtype="float32"``
    requests float32 batch buffers from propagating backends (half the
    batch memory, ~1e-6 relative tolerance; other backends ignore it).
    ``sweep_mode`` (``"auto"``/``"batched"``/``"delta"``) selects the
    delta-sweep planner on estimators that support it; ``result_cache``
    replays exact repeats of previously answered scenarios (see
    :func:`estimate`) and propagates only the misses, in one batch.
    There is no fallback chain here -- a failing backend raises its
    typed error directly.
    """
    models = list(inputs_list)
    if not models:
        return []
    first = models[0]
    if validate:
        for model in models:
            validate_pass(circuit, model)
    rcache_obj = resolve_result_cache(result_cache)
    keys = None
    hits: dict = {}
    if rcache_obj is not None:
        backend_obj = get_backend(backend)
        fingerprint = compile_fingerprint(
            circuit,
            backend_obj.name,
            first,
            backend_obj.cache_token(**options),
        )
        keys = [(fingerprint, scenario_digest(circuit, m)) for m in models]
        for index, key in enumerate(keys):
            payload = rcache_obj.get(key)
            if payload is not None:
                hits[index] = _replay_result(payload)
        if len(hits) == len(models):
            return [hits[index] for index in range(len(models))]
    miss_indices = [i for i in range(len(models)) if i not in hits]
    compiled = compile_model(
        circuit,
        first,
        backend=backend,
        cache=cache,
        validate=False,
        **options,
    )
    results = compiled.query_many(
        [models[i] for i in miss_indices],
        batch_size=batch_size,
        dtype=dtype,
        sweep_mode=sweep_mode,
    )
    ordered = list(hits.get(i) for i in range(len(models)))
    for index, result in zip(miss_indices, results):
        result.cache_hit = compiled.cache_hit
        result.fallbacks = ()
        if rcache_obj is not None:
            result.result_cache_hit = False
            rcache_obj.put(keys[index], result)
        ordered[index] = result
    return ordered
