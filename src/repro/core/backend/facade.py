"""The one front door of the estimation stack.

Every consumer -- CLI subcommands, the experiment scripts, benchmarks,
library users -- estimates switching activity through two functions::

    from repro import estimate

    result = estimate(circuit, inputs, backend="auto")

or, when the compile should be reused across queries or processes::

    from repro import compile_model

    model = compile_model(circuit, backend="junction-tree", cache=True)
    result = model.query(inputs)

``cache`` accepts ``None``/``False`` (no cache), ``True`` (the default
on-disk location), a directory path, or a
:class:`~repro.core.backend.cache.CompileCache` instance.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Union

from repro.circuits.netlist import Circuit
from repro.core.backend.base import CompiledModel
from repro.core.backend.cache import CompileCache
from repro.core.backend.registry import get_backend
from repro.core.inputs import IndependentInputs, InputModel
from repro.obs.trace import get_tracer

__all__ = ["compile_model", "estimate"]

CacheSpec = Union[None, bool, str, os.PathLike, CompileCache]


def resolve_cache(cache: CacheSpec) -> Optional[CompileCache]:
    """Normalize the ``cache`` argument to a :class:`CompileCache`."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return CompileCache()
    if isinstance(cache, CompileCache):
        return cache
    return CompileCache(cache)


def compile_model(
    circuit: Circuit,
    inputs: Optional[InputModel] = None,
    backend: str = "auto",
    cache: CacheSpec = None,
    **options: Any,
) -> CompiledModel:
    """Compile ``circuit`` with the named backend, via the cache if any.

    Returns a :class:`~repro.core.backend.base.CompiledModel` whose
    ``cache_hit`` attribute records how it was obtained (``None`` when
    no cache was consulted).
    """
    backend_obj = get_backend(backend)
    cache_obj = resolve_cache(cache)
    key = None
    if cache_obj is not None:
        key = cache_obj.key_for(
            circuit,
            backend_obj.name,
            inputs,
            backend_obj.cache_token(**options),
        )
        model = cache_obj.get(key)
        if model is not None:
            model.cache_hit = True
            return model
    with get_tracer().span(
        "backend.compile",
        backend=backend_obj.name,
        circuit=circuit.name,
        cache="miss" if cache_obj is not None else "off",
    ):
        model = backend_obj.compile(circuit, inputs, **options)
    if cache_obj is not None:
        cache_obj.put(key, model)
        model.cache_hit = False
    return model


def estimate(
    circuit: Circuit,
    inputs: Optional[InputModel] = None,
    backend: str = "auto",
    cache: CacheSpec = None,
    **options: Any,
):
    """Estimate switching activity in one call.

    Compiles (or cache-loads) a model and queries it with ``inputs``
    (default: independent fair-coin inputs, applied explicitly so a
    cached artifact never leaks the statistics it was compiled with).
    """
    model = compile_model(circuit, inputs, backend=backend, cache=cache, **options)
    query_inputs = inputs if inputs is not None else IndependentInputs(0.5)
    return model.query(query_inputs)
