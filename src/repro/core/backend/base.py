"""Backend protocol and the serializable :class:`CompiledModel` artifact.

The paper's central cost split is *compile once, re-propagate per input
statistics*.  This module makes the compiled half a first-class,
process-independent artifact:

- :class:`Backend` -- one query strategy over the switching model
  (``compile(circuit) -> CompiledModel``).
- :class:`CompiledModel` -- the compiled artifact.  ``query(inputs)``
  re-propagates new input statistics; ``save()``/``load()`` round-trip
  the junction-tree structure, propagation schedules, and potentials
  through a schema-versioned pickle envelope so a compile survives
  process boundaries (and can live in the on-disk compile cache).
- :class:`Method` -- the single enumerated vocabulary every backend's
  :class:`~repro.core.estimator.SwitchingEstimate` reports in its
  ``method`` field.

Like :mod:`repro.core.backend.errors`, this module stays import-light
(stdlib only) so the engine layers can depend on it without cycles.
"""

from __future__ import annotations

import io
import pickle
from abc import ABC, abstractmethod
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.backend.errors import ArtifactSchemaError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.netlist import Circuit
    from repro.core.estimator import SwitchingEstimate
    from repro.core.inputs import InputModel

__all__ = ["ARTIFACT_SCHEMA", "ARTIFACT_SCHEMA_VERSION", "Backend", "CompiledModel", "Method"]

#: Bump whenever the pickled layout of any CompiledModel changes; the
#: compile cache keys on it, so stale artifacts miss instead of
#: unpickling garbage.
#: v2: propagation message buffers moved from the schedule onto the
#: engine (batched propagation), new engine counters.
#: v3: schedules carry support-analysis state (per-clique feasibility
#: masks, packed sparse-kernel index plans); engines carry packed belief
#: buffers.  Supports serialize with the artifact, so cache hits skip
#: the support analysis entirely.
#: v4: segmented estimators carry the segment graph (SegmentNode
#: records with glue-edge plans) and the boundary refiner's compiled
#: glue-cone estimators instead of the flat segment/boundary-tree
#: lists.
ARTIFACT_SCHEMA_VERSION = 4

#: Schema tag written into every saved artifact envelope.
ARTIFACT_SCHEMA = f"repro.compiled/v{ARTIFACT_SCHEMA_VERSION}"


class Method(str, Enum):
    """Canonical vocabulary for ``SwitchingEstimate.method``.

    Every backend reports one of these values (as its plain string
    form), so downstream consumers can switch on the method without
    chasing scattered string literals.
    """

    SINGLE_BN = "single-bn"
    SEGMENTED = "segmented"
    ENUMERATION = "enumeration"
    PAIRWISE = "pairwise"
    LOCAL_CONE = "local-cone"
    INDEPENDENCE = "independence"
    MONTE_CARLO = "monte-carlo"
    SIMULATION = "simulation"

    @classmethod
    def canonical(cls, value: "str | Method") -> str:
        """Validate ``value`` against the vocabulary; return the string."""
        return cls(value).value


class CompiledModel(ABC):
    """A compiled switching model: query many times, compile once.

    Subclasses wrap whatever state their backend's compile produced
    (junction trees with propagation schedules, enumeration grids, or
    nothing at all for the closed-form baselines) behind one surface:

    - :meth:`query` -- re-propagate new input statistics and return a
      :class:`~repro.core.estimator.SwitchingEstimate`,
    - :meth:`save` / :meth:`load` -- schema-versioned (de)serialization.

    Attributes
    ----------
    backend_name:
        Registry name of the backend that produced this model.
    circuit:
        The compiled circuit.
    cache_hit:
        Set by the facade: ``True`` when this model came out of the
        compile cache, ``False`` when freshly compiled, ``None`` when
        no cache was consulted.
    """

    def __init__(self, backend_name: str, circuit: "Circuit"):
        self.backend_name = backend_name
        self.circuit = circuit
        self.cache_hit: Optional[bool] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @abstractmethod
    def query(self, inputs: "Optional[InputModel]" = None) -> "SwitchingEstimate":
        """Estimate switching activity under ``inputs``.

        ``None`` re-queries with the statistics the model currently
        holds (the repeat-propagation fast path); any other model is
        swapped in without recompiling.
        """

    def query_many(
        self,
        inputs_list: "list[InputModel]",
        batch_size: Optional[int] = None,
        dtype: Optional[str] = None,
        sweep_mode: Optional[str] = None,
    ) -> "list[SwitchingEstimate]":
        """Estimate K input-statistics scenarios against one compile.

        The default implementation loops :meth:`query`; backends whose
        estimator supports batched propagation (junction-tree,
        segmented) override this with a vectorized pass.  ``batch_size``
        chunks the sweep (propagation memory scales as
        ``batch_size x factor_bytes``); ``None`` propagates all K
        scenarios in one batch.  ``dtype="float32"`` asks for float32
        batch buffers where the backend supports them (~1e-6 relative
        tolerance).  ``sweep_mode`` (``"auto"``/``"batched"``/
        ``"delta"``) selects the delta-sweep planner on estimators that
        support it (dedup plus incremental chains for similar
        scenarios, bitwise-equal to the fresh batched pass).
        Loop-based backends ignore all three.
        """
        return [self.query(model) for model in inputs_list]

    @property
    def compile_seconds(self) -> float:
        """Seconds the original compile took (0 for compile-free backends)."""
        return 0.0

    def describe(self) -> Dict[str, Any]:
        """Small introspection dict for CLIs and cache listings."""
        return {
            "backend": self.backend_name,
            "circuit": self.circuit.name,
            "gates": self.circuit.num_gates,
            "compile_seconds": self.compile_seconds,
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize into a schema-versioned envelope.

        The envelope (schema tag, backend, circuit name) is a small
        outer pickle; the model itself is an inner blob, so loaders can
        reject incompatible artifacts before touching the payload.
        """
        envelope = {
            "schema": ARTIFACT_SCHEMA,
            "backend": self.backend_name,
            "circuit": self.circuit.name,
            "blob": pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL),
        }
        return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def read_envelope(data: bytes) -> Dict[str, Any]:
        """Decode and validate the outer envelope without unpickling the
        model blob (used by cache listings)."""
        try:
            envelope = pickle.loads(data)
        except Exception as exc:  # pickle raises many distinct types
            raise ArtifactSchemaError(f"unreadable artifact: {exc}") from exc
        if not isinstance(envelope, dict) or "schema" not in envelope:
            raise ArtifactSchemaError("artifact has no schema envelope")
        if envelope["schema"] != ARTIFACT_SCHEMA:
            raise ArtifactSchemaError(
                f"artifact schema {envelope['schema']!r} is not the "
                f"supported {ARTIFACT_SCHEMA!r}"
            )
        return envelope

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompiledModel":
        """Inverse of :meth:`to_bytes`; validates the schema tag."""
        envelope = cls.read_envelope(data)
        model = pickle.loads(envelope["blob"])
        if not isinstance(model, CompiledModel):
            raise ArtifactSchemaError(
                f"artifact blob is a {type(model).__name__}, not a CompiledModel"
            )
        return model

    def save(self, path) -> None:
        """Write the artifact to ``path`` (any ``os.PathLike``)."""
        with io.open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @classmethod
    def load(cls, path) -> "CompiledModel":
        """Load an artifact previously written by :meth:`save`."""
        with io.open(path, "rb") as fh:
            return cls.from_bytes(fh.read())


class Backend(ABC):
    """One query strategy over the LIDAG switching model.

    A backend is a stateless factory: :meth:`compile` turns a circuit
    (plus the input model's *structure* -- correlation edges, not
    values) into a :class:`CompiledModel` that answers any number of
    :meth:`~CompiledModel.query` calls.
    """

    #: registry name; subclasses override.
    name: str = ""

    @abstractmethod
    def compile(
        self,
        circuit: "Circuit",
        inputs: "Optional[InputModel]" = None,
        **options: Any,
    ) -> CompiledModel:
        """Compile ``circuit`` into a reusable model.

        ``inputs`` fixes the input-to-input edge structure baked into
        the compile (values are refreshed per query); ``options`` are
        backend-specific knobs (clique budgets, segment sizes, ...).
        """

    def cache_token(self, **options: Any) -> str:
        """Deterministic string of the options that affect the compile.

        Part of the compile-cache key: two compiles with equal tokens
        (same circuit, backend, input structure, schema version) are
        interchangeable.
        """
        return repr(sorted(options.items()))
