"""Content-addressed on-disk cache of compiled models.

The paper's compile cost is paid once per circuit *per process*; this
cache extends "once" across process boundaries.  Artifacts are keyed by
everything that determines the compile output:

- the circuit's structural fingerprint (gates, wiring, I/O),
- the backend name and its compile options,
- the *structure* of the input model (correlation edges are baked into
  the LIDAG at compile time; the values are refreshed on every query),
- the artifact schema version (so a code change that alters the pickled
  layout misses cleanly instead of loading garbage).

Hit/miss counts are kept on the cache object and mirrored into the
:mod:`repro.obs` metrics registry (``cache.hits`` / ``cache.misses``)
when observability is enabled.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import tempfile
import time
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.circuits.netlist import Circuit
from repro.core.backend.base import ARTIFACT_SCHEMA, CompiledModel
from repro.core.backend.errors import ArtifactSchemaError
from repro.core.inputs import InputModel
from repro.obs.metrics import get_metrics

__all__ = [
    "CacheEntry",
    "CompileCache",
    "circuit_fingerprint",
    "compile_fingerprint",
    "default_cache_dir",
    "input_structure_signature",
]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


#: Per-object memo for :func:`circuit_fingerprint`.  Netlists are
#: immutable after construction, and resident serving recomputes the
#: fingerprint on every request (pool admission + result-cache key),
#: so hashing a multi-hundred-gate netlist per hit dominates the hot
#: path.  Weak keys: the memo never keeps a circuit alive.
_FINGERPRINT_MEMO: "weakref.WeakKeyDictionary[Circuit, str]" = (
    weakref.WeakKeyDictionary()
)


def circuit_fingerprint(circuit: Circuit) -> str:
    """Deterministic structural digest of a netlist.

    Covers the gate list in topological order (type + input wiring),
    the primary I/O declarations, and the name.  Two circuits with the
    same fingerprint compile to interchangeable models.
    """
    try:
        memo = _FINGERPRINT_MEMO.get(circuit)
    except TypeError:  # unhashable or non-weakrefable stand-in
        memo = None
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    digest.update(circuit.name.encode())
    digest.update(("|in:" + ",".join(circuit.inputs)).encode())
    digest.update(("|out:" + ",".join(circuit.outputs)).encode())
    for line in circuit.topological_order():
        gate = circuit.driver(line)
        if gate is not None:
            entry = f"|{gate.output}={gate.gate_type.name}({','.join(gate.inputs)})"
            digest.update(entry.encode())
    fingerprint = digest.hexdigest()
    try:
        _FINGERPRINT_MEMO[circuit] = fingerprint
    except TypeError:
        pass
    return fingerprint


def input_structure_signature(
    inputs: Optional[InputModel], circuit: Circuit
) -> str:
    """Digest of the input model's *edge structure*.

    Compilation bakes input-to-input correlation edges into the LIDAG;
    swapping values afterwards is free but changing the structure needs
    a recompile, so the structure is part of the cache key.  ``None``
    (backend default statistics) hashes to a fixed tag.
    """
    if inputs is None:
        return "default"
    parts = [type(inputs).__name__]
    for cpd in inputs.input_cpds(circuit.inputs):
        parts.append(f"{cpd.variable}|{cpd.cardinality}|{','.join(cpd.parents)}")
    return hashlib.sha256(";".join(parts).encode()).hexdigest()


def compile_fingerprint(
    circuit: Circuit,
    backend_name: str,
    inputs: Optional[InputModel] = None,
    options_token: str = "",
) -> str:
    """Content fingerprint of a compile: netlist hash + backend +
    input structure + options + schema version.

    This is the pure function behind :meth:`CompileCache.key_for`; it
    needs no cache directory, so result caches
    (:class:`repro.core.rcache.ResultCache`) can key on the identical
    fingerprint whether or not an on-disk compile cache is configured.
    """
    material = "\n".join(
        [
            ARTIFACT_SCHEMA,
            backend_name,
            circuit_fingerprint(circuit),
            input_structure_signature(inputs, circuit),
            options_token,
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheEntry:
    """One artifact on disk, described without unpickling the model."""

    key: str
    path: Path
    size_bytes: int
    backend: str
    circuit: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "backend": self.backend,
            "circuit": self.circuit,
            "size_bytes": self.size_bytes,
        }


class CompileCache:
    """Content-addressed store of serialized :class:`CompiledModel`\\ s.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Defaults to
        :func:`default_cache_dir`.
    """

    SUFFIX = ".repro.pkl"

    #: wall-clock ceiling for the non-POSIX claim-file lock before a
    #: stale claim (crashed process) is stolen
    LOCK_TIMEOUT_SECONDS = 30.0

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Inter-process locking
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _lock(self, shared: bool = False):
        """Advisory inter-process lock over the cache directory.

        Writers take it exclusive around the tmp-file write + rename,
        readers shared around the artifact read, so a reader can never
        interleave a partial view of an entry with a concurrent
        replace.  Uses ``fcntl.flock`` where available and an
        ``O_EXCL`` claim file elsewhere (exclusive-only, with a
        stale-claim timeout so a crashed writer cannot wedge the
        cache).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            fd = os.open(self.root / ".lock", os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)
            return
        claim = self.root / ".lock.claim"  # pragma: no cover - non-POSIX
        deadline = time.monotonic() + self.LOCK_TIMEOUT_SECONDS
        while True:
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                if time.monotonic() > deadline:
                    with contextlib.suppress(OSError):
                        os.unlink(claim)
                    deadline = time.monotonic() + self.LOCK_TIMEOUT_SECONDS
                time.sleep(0.005)
        try:
            yield
        finally:
            os.close(fd)
            with contextlib.suppress(OSError):
                os.unlink(claim)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def key_for(
        self,
        circuit: Circuit,
        backend_name: str,
        inputs: Optional[InputModel] = None,
        options_token: str = "",
    ) -> str:
        """Cache key: netlist hash + backend + options + schema version."""
        return compile_fingerprint(circuit, backend_name, inputs, options_token)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{self.SUFFIX}"

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[CompiledModel]:
        """Load the artifact under ``key``; ``None`` (a miss) when it is
        absent or unreadable.  Corrupt entries are evicted."""
        path = self.path_for(key)
        if not self.root.is_dir():
            self._record(hit=False)
            return None
        try:
            with self._lock(shared=True):
                data = path.read_bytes()
        except OSError:
            self._record(hit=False)
            return None
        try:
            model = CompiledModel.from_bytes(data)
        except Exception:
            # A stale or truncated artifact must never poison callers;
            # drop it and recompile.
            path.unlink(missing_ok=True)
            self.evictions += 1
            registry = get_metrics()
            if registry.enabled:
                registry.counter("cache.evictions").inc(1)
            self._record(hit=False)
            return None
        self._record(hit=True)
        return model

    def put(self, key: str, model: CompiledModel) -> Path:
        """Atomically write ``model`` under ``key`` (tmp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        data = model.to_bytes()
        with self._lock(shared=False):
            fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def entries(self) -> List[CacheEntry]:
        """Describe every artifact in the cache (cheap: envelope only)."""
        found: List[CacheEntry] = []
        if not self.root.is_dir():
            return found
        for path in sorted(self.root.glob(f"*{self.SUFFIX}")):
            key = path.name[: -len(self.SUFFIX)]
            try:
                envelope = CompiledModel.read_envelope(path.read_bytes())
            except (ArtifactSchemaError, OSError):
                continue
            found.append(
                CacheEntry(
                    key=key,
                    path=path,
                    size_bytes=path.stat().st_size,
                    backend=envelope.get("backend", "?"),
                    circuit=envelope.get("circuit", "?"),
                )
            )
        return found

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob(f"*{self.SUFFIX}"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        """This process's hit/miss/eviction counters for the cache object."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    # ------------------------------------------------------------------

    def _record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        registry = get_metrics()
        if registry.enabled:
            registry.counter("cache.hits" if hit else "cache.misses").inc(1)

    def __repr__(self) -> str:
        return f"CompileCache(root={str(self.root)!r}, hits={self.hits}, misses={self.misses})"
