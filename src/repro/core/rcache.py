"""Fingerprint-keyed result cache and canonical scenario digests.

Real estimation traffic is skewed: power-sweep and synthesis loops
re-evaluate the *same* input statistics over and over.  Propagation is
a pure function of the installed potentials, so an exact repeat can be
answered from memory with results bitwise-identical to a fresh pass.
This module supplies the two halves of that reuse:

- :func:`scenario_digest` -- a canonical content hash of the input
  statistics a model induces for a circuit.  Two scenario specs that
  build the same per-input CPDs collide regardless of surface form
  (dict key order, ``-0.0`` vs ``0.0``, float-repr aliases, the order
  correlated groups were listed in); any perturbed probability changes
  the digest.
- :class:`ResultCache` -- a thread-safe LRU of ``(compile fingerprint,
  scenario digest) -> stored marginal stacks``.  The fingerprint half
  is the compile-cache content key (circuit + backend + options +
  artifact schema), so a cache entry can never survive anything that
  would have changed the compiled model.

:func:`input_cpd_signatures` exposes the per-input digests the sweep
planner uses to measure scenario similarity (CPD-change Hamming
distance) without re-hashing whole scenarios.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.obs.metrics import get_metrics

__all__ = [
    "ResultCache",
    "input_cpd_signatures",
    "replay_estimate",
    "scenario_digest",
]


def _cpd_digest(cpd) -> bytes:
    """Content hash of one CPD: variable, parents, float64 table bytes.

    The table is normalized with ``+ 0.0`` so ``-0.0`` and ``0.0``
    (distinct bit patterns, equal numbers, identical propagation
    results) hash alike.
    """
    table = np.ascontiguousarray(cpd.factor.values, dtype=np.float64) + 0.0
    h = hashlib.sha256()
    h.update(cpd.variable.encode())
    h.update(b"\x1f")
    for parent in cpd.parents:
        h.update(parent.encode())
        h.update(b"\x1f")
    h.update(b"\x1e")
    h.update(table.tobytes())
    return h.digest()


def input_cpd_signatures(
    circuit, input_model
) -> "Dict[str, Tuple[bytes, Tuple[str, ...]]]":
    """Per-input ``{name: (digest, parents)}`` for one scenario.

    Digests hash the CPD the model *induces* for each primary input of
    ``circuit`` (via ``input_cpds_trusted``), so any two specs that
    build the same tables -- whatever their surface form -- get equal
    digests.  The parents tuple lets callers close a subset of inputs
    over its correlation chain (a chained member's CPD depends on its
    predecessors' CPDs too).
    """
    cpds = input_model.input_cpds_trusted(list(circuit.inputs))
    return {cpd.variable: (_cpd_digest(cpd), tuple(cpd.parents)) for cpd in cpds}


def scenario_digest(circuit, input_model) -> str:
    """Canonical content digest of one scenario against one circuit.

    Hashes every induced input CPD in sorted-variable order, so the
    digest is independent of spec dict ordering, correlated group
    listing order, and float spellings that decode to the same double.
    Member order *within* a correlated group is a different chain model
    (different CPD parent structure) and digests differently.
    """
    signatures = input_cpd_signatures(circuit, input_model)
    h = hashlib.sha256()
    for name in sorted(signatures):
        h.update(signatures[name][0])
    return h.hexdigest()


def replay_estimate(payload: "Dict[str, Any]"):
    """Materialize a stored cache payload as a fresh
    :class:`~repro.core.estimator.SwitchingEstimate` marked
    ``result_cache_hit=True`` (imported lazily to keep this module
    import-light under the estimator)."""
    from repro.core.estimator import SwitchingEstimate

    return SwitchingEstimate(
        distributions=payload["distributions"],
        compile_seconds=0.0,
        propagate_seconds=0.0,
        method=payload["method"],
        segments=payload["segments"],
        fallbacks=(),
        cache_hit=None,
        result_cache_hit=True,
        refine_iterations=payload["refine_iterations"],
        refine_delta=payload["refine_delta"],
    )


class ResultCache:
    """Thread-safe LRU of stored switching-estimate payloads.

    Keys are ``(compile fingerprint, scenario digest)`` tuples; values
    are the stored ``(4,)`` per-line marginals plus the method fields a
    replay needs.  Arrays are copied both into and out of the cache, so
    neither the producer's engine buffers nor a consumer's mutations
    can corrupt a stored result -- a hit replays the bitwise-identical
    marginals of the propagation that filled it.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0

    # ------------------------------------------------------------------

    def get(
        self, key: Tuple[str, str], need_arrays: bool = True
    ) -> Optional[Dict[str, Any]]:
        """Stored payload for ``key`` (arrays copied), or ``None``.

        ``need_arrays=False`` omits the per-line marginal copies and
        returns only the precomputed scalar views (``activities``,
        ``mean_activity``) -- the serving hot path for ``detail`` modes
        that never touch the distributions.
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        registry = get_metrics()
        if registry.enabled:
            if payload is None:
                registry.counter("rcache.misses").inc(1)
            else:
                registry.counter("rcache.hits").inc(1)
        if payload is None:
            return None
        view = {
            "activities": dict(payload["activities"]),
            "mean_activity": payload["mean_activity"],
            "method": payload["method"],
            "segments": payload["segments"],
            "refine_iterations": payload["refine_iterations"],
            "refine_delta": payload["refine_delta"],
        }
        if need_arrays:
            view["distributions"] = {
                line: arr.copy()
                for line, arr in payload["distributions"].items()
            }
        return view

    def put(self, key: Tuple[str, str], estimate) -> None:
        """Store one :class:`SwitchingEstimate`'s replayable payload.

        Alongside the bitwise marginal copies, the rendered scalars a
        response needs (per-line switching activities, their mean) are
        computed once here so that every later hit replays stored
        floats instead of re-deriving them from the arrays.
        """
        distributions = {
            line: np.array(arr, copy=True)
            for line, arr in estimate.distributions.items()
        }
        size = sum(arr.nbytes for arr in distributions.values())
        payload = {
            "distributions": distributions,
            "activities": {
                line: float(p) for line, p in estimate.activities.items()
            },
            "mean_activity": float(estimate.mean_activity()),
            "method": estimate.method,
            "segments": estimate.segments,
            "refine_iterations": estimate.refine_iterations,
            "refine_delta": estimate.refine_delta,
            "nbytes": size,
        }
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.bytes -= old["nbytes"]
            self._entries[key] = payload
            self.bytes += size
            while len(self._entries) > self.max_entries:
                _, dropped = self._entries.popitem(last=False)
                self.bytes -= dropped["nbytes"]
                self.evictions += 1
                evicted += 1
        registry = get_metrics()
        if registry.enabled:
            if evicted:
                registry.counter("rcache.evictions").inc(evicted)
            registry.gauge("rcache.bytes").set(float(self.bytes))
            registry.gauge("rcache.entries").set(float(len(self._entries)))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.bytes = 0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bytes": self.bytes,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }
