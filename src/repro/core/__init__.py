"""The paper's contribution: LIDAG-structured switching-activity modeling.

- :mod:`repro.core.states` -- the four-state transition algebra
  (``x00, x01, x10, x11``) that bakes lag-1 temporal correlation into
  each random variable.
- :mod:`repro.core.cpt` -- deterministic gate CPTs over transition
  states (Section 4 of the paper).
- :mod:`repro.core.inputs` -- primary-input statistics models
  (independent, lag-1 Markov temporal, spatially correlated groups).
- :mod:`repro.core.lidag` -- LIDAG construction (Definition 8) and the
  Theorem-3 I-map machinery (Markov-boundary ordering).
- :mod:`repro.core.estimator` -- the user-facing
  :class:`SwitchingActivityEstimator` with the compile-once /
  propagate-per-statistics split, plus the exact enumeration oracle.
- :mod:`repro.core.segmentation` -- multiple-BN estimation of circuits
  too large for a single junction tree (Section 6).
"""

from repro.core.estimator import (
    SwitchingActivityEstimator,
    SwitchingEstimate,
    exact_switching_by_enumeration,
)
from repro.core.inputs import (
    CorrelatedGroupInputs,
    IndependentInputs,
    InputModel,
    TemporalInputs,
    TraceInputs,
)
from repro.core.lidag import build_lidag, lidag_node_ordering
from repro.core.rcache import ResultCache, scenario_digest
from repro.core.segmentation import SegmentedEstimator
from repro.core.sequential import SequentialEstimate, SequentialSwitchingEstimator
from repro.core.states import (
    N_STATES,
    STATE_NAMES,
    TransitionState,
    switching_probability,
)

__all__ = [
    "CorrelatedGroupInputs",
    "IndependentInputs",
    "InputModel",
    "N_STATES",
    "STATE_NAMES",
    "ResultCache",
    "SegmentedEstimator",
    "SequentialEstimate",
    "SequentialSwitchingEstimator",
    "SwitchingActivityEstimator",
    "SwitchingEstimate",
    "TemporalInputs",
    "TraceInputs",
    "TransitionState",
    "build_lidag",
    "exact_switching_by_enumeration",
    "lidag_node_ordering",
    "scenario_digest",
    "switching_probability",
]
