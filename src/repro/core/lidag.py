"""LIDAG construction (Definition 8) and Theorem-3 machinery.

The Logic-Induced Directed Acyclic Graph has one node per circuit line
(its 4-state transition variable) and a directed edge from every gate
input's variable to the gate output's variable.  Theorem 3 of the paper
proves this DAG is a *minimal I-map* of the switching dependency model
-- i.e. a Bayesian network: with the lines ordered inputs-first and
topologically, each output line's Markov boundary is exactly its gate's
input set, so the LIDAG is a boundary DAG, and boundary DAGs are
minimal I-maps (Pearl's Theorem 2).

:func:`build_lidag` quantifies the structure with deterministic gate
CPTs and the input model's CPDs;
:func:`verify_imap` checks Theorem 3 empirically on small circuits by
confronting every displayed d-separation with the enumerated joint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.bayesian.dsep import all_d_separations
from repro.bayesian.network import BayesianNetwork
from repro.circuits.netlist import Circuit
from repro.core.cpt import gate_transition_cpd
from repro.core.inputs import IndependentInputs, InputModel
from repro.obs.trace import get_tracer


def build_lidag(
    circuit: Circuit, input_model: Optional[InputModel] = None
) -> BayesianNetwork:
    """Build the LIDAG-structured Bayesian network of a circuit.

    Parameters
    ----------
    circuit:
        The combinational circuit.
    input_model:
        Statistics of the primary inputs; defaults to independent
        fair-coin streams (the paper's random-input setting).

    Returns
    -------
    A validated :class:`BayesianNetwork` whose nodes are the circuit's
    line names, each a 4-state transition variable.
    """
    model = input_model if input_model is not None else IndependentInputs(0.5)
    with get_tracer().span(
        "compile.lidag", circuit=circuit.name, gates=circuit.num_gates
    ):
        bn = BayesianNetwork(f"lidag-{circuit.name}")
        for cpd in model.input_cpds(circuit.inputs):
            bn.add_cpd(cpd)
        for line in circuit.topological_order():
            gate = circuit.driver(line)
            if gate is not None:
                bn.add_cpd(gate_transition_cpd(gate))
        bn.validate()
        return bn


def lidag_node_ordering(circuit: Circuit) -> List[str]:
    """The Theorem-3 ordering: input lines first, then outputs topologically.

    Relative to this ordering each line's Markov boundary is its gate's
    input set (empty for primary inputs), which is what makes the LIDAG
    a boundary DAG.
    """
    order = circuit.topological_order()
    inputs = [ln for ln in order if circuit.driver(ln) is None]
    internals = [ln for ln in order if circuit.driver(ln) is not None]
    return inputs + internals


def markov_boundaries(circuit: Circuit) -> Dict[str, Set[str]]:
    """Markov boundary of each line relative to the Theorem-3 ordering."""
    boundaries: Dict[str, Set[str]] = {}
    for line in circuit.topological_order():
        gate = circuit.driver(line)
        boundaries[line] = set(gate.inputs) if gate is not None else set()
    return boundaries


def verify_imap(
    bn: BayesianNetwork,
    max_conditioning: int = 1,
    atol: float = 1e-9,
) -> bool:
    """Empirically verify the I-map property of a (small) network.

    Enumerates the joint distribution and checks that every pairwise
    d-separation displayed by the DAG (with conditioning sets up to
    ``max_conditioning``) is a true conditional independence.  This is
    the testable half of Theorem 3; exponential, so only use on small
    LIDAGs.
    """
    import itertools

    joint = bn.joint_factor()
    dag = bn.to_digraph()
    for x, y, z in all_d_separations(dag, max_conditioning=max_conditioning):
        z_list = sorted(z)
        pxyz = joint.marginal_onto([x, y] + z_list).permute([x, y] + z_list)
        cards = [pxyz.cardinality(v) for v in z_list]
        for z_states in itertools.product(*(range(c) for c in cards)):
            sub = pxyz.values[(slice(None), slice(None)) + z_states]
            total = sub.sum()
            if total < atol:
                continue
            cond = sub / total
            outer = cond.sum(axis=1)[:, None] * cond.sum(axis=0)[None, :]
            if not np.allclose(cond, outer, atol=1e-7):
                return False
    return True
