"""Deterministic gate CPTs over transition states (paper Section 4).

The conditional probability of an output line's transition given its
input lines' transitions is fully determined by the gate type: apply
the gate's Boolean function to the t-1 input values to get the t-1
output value, and to the t input values to get the t output value.
Every row of the table is therefore an indicator vector -- e.g. for an
OR gate ``P(X5 = x01 | X1 = x01, X2 = x00) = 1`` (the paper's example).

A gate with k inputs yields a table with ``4^k`` rows, exactly the
"4^3 entries" the paper quotes for two-input gates' CPTs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

from repro.bayesian.cpd import TabularCPD
from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.netlist import Circuit, Gate
from repro.core.states import N_STATES, TransitionState


@lru_cache(maxsize=None)
def _transition_function(gate_type: GateType, arity: int) -> Tuple[int, ...]:
    """Output transition state per flat parent-state index (cached).

    Index ``k`` encodes the parent states in row-major order (parent 0
    most significant), matching ``numpy.unravel_index``.
    """
    table = []
    for flat in range(N_STATES ** arity):
        states = _decode_flat(flat, arity)
        prev_bits = [(s >> 1) & 1 for s in states]
        curr_bits = [s & 1 for s in states]
        out_prev = evaluate_gate(gate_type, prev_bits)
        out_curr = evaluate_gate(gate_type, curr_bits)
        table.append((out_prev << 1) | out_curr)
    return tuple(table)


def _decode_flat(flat: int, arity: int) -> Tuple[int, ...]:
    """Row-major decode of a flat index into per-parent states."""
    states = []
    for position in range(arity - 1, -1, -1):
        states.append((flat // (N_STATES ** position)) % N_STATES)
    return tuple(states)


def gate_transition_cpd(gate: Gate) -> TabularCPD:
    """The deterministic CPD ``P(output transition | input transitions)``."""
    arity = gate.arity
    function_table = _transition_function(gate.gate_type, arity)

    def output_state(*parent_states: int) -> int:
        flat = 0
        for state in parent_states:
            flat = flat * N_STATES + state
        return function_table[flat]

    return TabularCPD.deterministic(
        gate.output,
        N_STATES,
        list(gate.inputs),
        [N_STATES] * arity,
        output_state,
    )


def circuit_transition_cpds(circuit: Circuit) -> list:
    """Gate CPDs for every gate-driven line of a circuit."""
    return [gate_transition_cpd(gate) for gate in circuit.gates.values()]


def output_transition(
    gate_type: GateType, input_states: Sequence[int]
) -> TransitionState:
    """Direct functional form: output transition for given input transitions."""
    prev_bits = [(s >> 1) & 1 for s in input_states]
    curr_bits = [s & 1 for s in input_states]
    out_prev = evaluate_gate(gate_type, prev_bits)
    out_curr = evaluate_gate(gate_type, curr_bits)
    return TransitionState((out_prev << 1) | out_curr)
