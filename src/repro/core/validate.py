"""Strict validation of circuits and input models.

This is the gatekeeper the serving path runs before any LIDAG is built:
Theorem 3 (the LIDAG is a minimal I-map, so junction-tree propagation
is exact) only holds for a well-formed combinational netlist, and the
Hugin kernels only stay finite for well-formed input statistics.  The
pass is invoked from three places:

- :class:`repro.circuits.netlist.Circuit` construction
  (:func:`check_netlist` + the cycle/output checks in ``__init__``),
- :func:`repro.circuits.bench.parse_bench` (declaration-level checks
  with ``.bench`` line numbers, before a :class:`Circuit` exists),
- the backend facade (:func:`validate_circuit` /
  :func:`validate_input_model` on every ``compile_model`` call, so
  hand-built or mutated objects are caught too).

Every rejection raises a typed exception from :mod:`repro.errors`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.states import N_STATES
from repro.errors import (
    CombinationalCycleError,
    DuplicateDefinitionError,
    InputModelError,
    UndefinedLineError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuits.netlist import Circuit, Gate
    from repro.core.inputs import InputModel

__all__ = [
    "check_netlist",
    "validate",
    "validate_circuit",
    "validate_input_model",
]

_ATOL = 1e-9  # tolerance for "marginal sums to one"


def check_netlist(
    name: str, inputs: Sequence[str], gates: Iterable["Gate"]
) -> Dict[str, "Gate"]:
    """Declaration-level netlist checks; returns the driver map.

    Rejects duplicate primary inputs, multiply-driven lines, gates
    driving declared primary inputs, and gate operands that no line
    defines.  Cycle detection needs the full driver map and lives in
    :meth:`Circuit._compute_topological_order`.
    """
    seen_inputs = set()
    for line in inputs:
        if line in seen_inputs:
            raise DuplicateDefinitionError(
                f"{name}: duplicate primary input names ({line!r} declared twice)"
            )
        seen_inputs.add(line)

    driver: Dict[str, Gate] = {}
    for gate in gates:
        if gate.output in driver:
            raise DuplicateDefinitionError(
                f"{name}: line {gate.output!r} driven twice"
            )
        if gate.output in seen_inputs:
            raise DuplicateDefinitionError(
                f"{name}: primary input {gate.output!r} driven by a gate"
            )
        driver[gate.output] = gate

    defined = seen_inputs | set(driver)
    for gate in driver.values():
        for src in gate.inputs:
            if src not in defined:
                raise UndefinedLineError(
                    f"{name}: gate {gate.output!r} reads undefined line {src!r}"
                )
    return driver


def validate_circuit(circuit: "Circuit") -> None:
    """Re-run every structural check on an existing :class:`Circuit`.

    Construction already validates, but circuits are mutable objects
    that may have been edited or unpickled; the facade re-checks before
    compiling so a malformed object fails typed instead of producing a
    wrong answer deep inside a backend.
    """
    check_netlist(circuit.name, circuit.inputs, circuit.gates.values())
    for gate in circuit.gates.values():
        if gate.output != circuit.gates[gate.output].output:  # pragma: no cover
            raise DuplicateDefinitionError(
                f"{circuit.name}: driver map key {gate.output!r} mismatch"
            )
    # Cycle check via Kahn's algorithm over the current driver map (the
    # cached topological order may predate a mutation).
    indegree = {
        out: sum(1 for src in g.inputs if src in circuit.gates)
        for out, g in circuit.gates.items()
    }
    ready = [out for out, deg in indegree.items() if deg == 0]
    consumers: Dict[str, list] = {}
    for out, g in circuit.gates.items():
        for src in g.inputs:
            if src in circuit.gates:
                consumers.setdefault(src, []).append(out)
    placed = 0
    while ready:
        line = ready.pop()
        placed += 1
        for consumer in consumers.get(line, ()):
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                ready.append(consumer)
    if placed != len(circuit.gates):
        cyclic = sorted(out for out, deg in indegree.items() if deg > 0)
        raise CombinationalCycleError(
            f"{circuit.name}: combinational cycle through {cyclic[:5]}"
        )
    defined = set(circuit.inputs) | set(circuit.gates)
    for line in circuit.outputs:
        if line not in defined:
            raise UndefinedLineError(
                f"{circuit.name}: undefined primary output {line!r}"
            )


def validate_input_model(circuit: "Circuit", model: "InputModel") -> None:
    """Check input statistics are usable for the given circuit.

    Every primary input must have a finite, non-negative marginal over
    the four transition states summing to one, and the model's CPDs
    must cover exactly the circuit's inputs with parents drawn from the
    same set.
    """
    from repro.core.inputs import InputModel

    if not isinstance(model, InputModel):
        raise InputModelError(
            f"input model must be an InputModel, got {type(model).__name__}"
        )
    for name in circuit.inputs:
        try:
            marginal = np.asarray(model.marginal_distribution(name), dtype=float)
        except KeyError as exc:
            raise InputModelError(
                f"input model provides no statistics for primary input {name!r}"
            ) from exc
        if marginal.shape != (N_STATES,):
            raise InputModelError(
                f"marginal of {name!r} has shape {marginal.shape}, "
                f"expected ({N_STATES},)"
            )
        if not np.all(np.isfinite(marginal)):
            raise InputModelError(f"marginal of {name!r} has non-finite entries")
        if np.any(marginal < 0):
            raise InputModelError(f"marginal of {name!r} has negative entries")
        if abs(float(marginal.sum()) - 1.0) > _ATOL:
            raise InputModelError(
                f"marginal of {name!r} sums to {marginal.sum():.6g}, expected 1"
            )
    input_set = set(circuit.inputs)
    try:
        cpds = model.input_cpds(circuit.inputs)
    except KeyError as exc:
        raise InputModelError(
            f"input model cannot build CPDs for {circuit.name}: {exc}"
        ) from exc
    covered = set()
    for cpd in cpds:
        if cpd.variable not in input_set:
            raise InputModelError(
                f"input model defines CPD for {cpd.variable!r}, "
                f"which is not a primary input of {circuit.name}"
            )
        if cpd.variable in covered:
            raise InputModelError(
                f"input model defines two CPDs for {cpd.variable!r}"
            )
        covered.add(cpd.variable)
        for parent in cpd.parents:
            if parent not in input_set:
                raise InputModelError(
                    f"CPD of {cpd.variable!r} conditions on {parent!r}, "
                    f"which is not a primary input of {circuit.name}"
                )
        if not np.all(np.isfinite(cpd.to_factor().values)):
            raise InputModelError(f"CPD of {cpd.variable!r} has non-finite entries")
    missing = input_set - covered
    if missing:
        raise InputModelError(
            f"input model provides no CPD for inputs {sorted(missing)}"
        )


def validate(circuit: "Circuit", model: Optional["InputModel"] = None) -> None:
    """Validate a circuit and (when given) its input model."""
    validate_circuit(circuit)
    if model is not None:
        validate_input_model(circuit, model)
