"""Sequential-circuit switching estimation by state fixpoint iteration.

A synchronous sequential circuit, after full-scan conversion (flip-flop
outputs become pseudo primary inputs, flip-flop inputs pseudo primary
outputs -- what :func:`repro.circuits.bench.parse_bench` does to DFF
cells), is a combinational core plus a ``state_map`` from each
present-state line to its next-state line.

At stationarity the statistics of a flip-flop's output equal the
statistics of its input one cycle earlier, so the per-state 4-state
transition distributions satisfy a fixpoint equation.  This estimator
iterates it: estimate the combinational core with the current state
marginals as pseudo-input priors, read the next-state distributions,
feed them back, and repeat until convergence.

Approximation scope (the textbook one for probabilistic FSM analysis):

- state-line *marginals* always cross the feedback cut; the optional
  ``"chain"`` mode additionally carries the within-cycle joint of
  consecutive state pairs;
- correlations *across* cycles (e.g. a ripple counter's bit ``q1``
  toggling exactly when ``q0`` and the enable were high one cycle
  earlier) are outside a single-cycle model: capturing them requires
  multi-cycle unrolling, which this estimator intentionally does not do.
  Consequently shift-register-like feedback is exact, while
  carry-chained counters and hold paths (``q' = q`` under a hold
  condition) overestimate the switching of the coupled bits
  (validated against true sequential simulation in the tests and
  ``benchmarks/bench_sequential.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.circuits.netlist import Circuit
from repro.core.backend.errors import CliqueBudgetExceeded
from repro.core.estimator import SwitchingActivityEstimator, SwitchingEstimate
from repro.core.inputs import IndependentInputs, InputModel
from repro.core.segmentation import (
    FixedMarginalInputs,
    SegmentedEstimator,
    TreeBoundaryInputs,
)
from repro.core.states import N_STATES, switching_probability


@dataclass
class SequentialEstimate:
    """Fixpoint result: line distributions plus convergence metadata."""

    distributions: Dict[str, np.ndarray]
    iterations: int
    converged: bool
    residual: float
    compile_seconds: float
    propagate_seconds: float

    def switching(self, line: str) -> float:
        return switching_probability(self.distributions[line])

    @property
    def activities(self) -> Dict[str, float]:
        return {ln: self.switching(ln) for ln in self.distributions}

    def mean_activity(self) -> float:
        acts = self.activities
        return float(np.mean(list(acts.values()))) if acts else 0.0


class SequentialSwitchingEstimator:
    """Switching activity of a scan-converted sequential circuit.

    Parameters
    ----------
    circuit:
        The combinational core (flip-flops removed).
    state_map:
        ``present-state line -> next-state line``; keys must be primary
        inputs of the core, values any core line.
    input_model:
        Statistics of the *true* primary inputs (state lines are driven
        by the fixpoint).  Marginals only: the feedback cut carries
        per-line distributions.
    max_clique_states:
        Clique budget for the underlying estimator; cores that exceed it
        fall back to the segmented estimator.
    state_correlation:
        ``"chain"`` (default) feeds back, in addition to per-state
        marginals, the joint of consecutive state pairs as a conditional
        chain (computed by variable elimination on the core's network) --
        capturing e.g. counter carry correlations.  ``"independent"``
        feeds back marginals only (the textbook approximation).  Cores
        that fall back to the segmented estimator use ``independent``.
    """

    def __init__(
        self,
        circuit: Circuit,
        state_map: Mapping[str, str],
        input_model: Optional[InputModel] = None,
        max_clique_states: int = 4 ** 10,
        state_correlation: str = "chain",
    ):
        if state_correlation not in ("chain", "independent"):
            raise ValueError(f"unknown state_correlation {state_correlation!r}")
        self.circuit = circuit
        self.state_map = dict(state_map)
        self.input_model = input_model if input_model is not None else IndependentInputs(0.5)
        self.max_clique_states = max_clique_states
        self.state_correlation = state_correlation

        input_set = set(circuit.inputs)
        line_set = set(circuit.lines)
        for present, nxt in self.state_map.items():
            if present not in input_set:
                raise ValueError(f"present-state line {present!r} is not a primary input")
            if nxt not in line_set:
                raise ValueError(f"next-state line {nxt!r} is not a circuit line")

        self._estimator = None
        self._chain: Dict[str, str] = {}
        self.compile_seconds = 0.0

    # ------------------------------------------------------------------

    def _true_inputs(self):
        return [ln for ln in self.circuit.inputs if ln not in self.state_map]

    def _state_chain(self) -> Dict[str, str]:
        """Chain edges over the present-state lines, in input order."""
        ordered = [ln for ln in self.circuit.inputs if ln in self.state_map]
        return {child: parent for parent, child in zip(ordered, ordered[1:])}

    def compile(self) -> "SequentialSwitchingEstimator":
        if self._estimator is not None:
            return self
        start = time.perf_counter()
        uniform = {name: np.full(N_STATES, 0.25) for name in self.circuit.inputs}
        self._chain = self._state_chain() if self.state_correlation == "chain" else {}
        if self._chain:
            placeholder: InputModel = TreeBoundaryInputs(uniform, self._chain)
        else:
            placeholder = FixedMarginalInputs(uniform)
        try:
            estimator = SwitchingActivityEstimator(
                self.circuit, placeholder, max_clique_states=self.max_clique_states
            )
            estimator.compile()
        except CliqueBudgetExceeded:
            # Segmented fallback: marginal-only feedback.
            self._chain = {}
            estimator = SegmentedEstimator(
                self.circuit,
                FixedMarginalInputs(uniform),
                max_clique_states=self.max_clique_states,
            )
            estimator.compile()
        self._estimator = estimator
        self.compile_seconds = time.perf_counter() - start
        return self

    def _next_state_conditionals(
        self, state_dists: Dict[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """``P(next(child) | next(parent))`` per chain edge, by variable
        elimination on the core's (freshly updated) network."""
        from repro.bayesian.elimination import variable_elimination

        bn = self._estimator._bn
        conditionals: Dict[str, np.ndarray] = {}
        for child, parent in self._chain.items():
            next_child = self.state_map[child]
            next_parent = self.state_map[parent]
            if next_child == next_parent:
                continue
            joint = variable_elimination(bn, [next_parent, next_child]).values
            rows = np.empty((N_STATES, N_STATES))
            for state in range(N_STATES):
                mass = joint[state].sum()
                rows[state] = (
                    joint[state] / mass if mass > 1e-15 else state_dists[child]
                )
            conditionals[child] = rows
        return conditionals

    def estimate(
        self, max_iterations: int = 100, tol: float = 1e-7
    ) -> SequentialEstimate:
        """Iterate the state fixpoint and return converged distributions."""
        self.compile()
        start = time.perf_counter()
        pi_dists = {
            name: np.asarray(self.input_model.marginal_distribution(name))
            for name in self._true_inputs()
        }
        state_dists: Dict[str, np.ndarray] = {
            present: np.full(N_STATES, 0.25) for present in self.state_map
        }
        conditionals: Dict[str, np.ndarray] = {}
        result: Optional[SwitchingEstimate] = None
        residual = float("inf")
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            priors = {**pi_dists, **state_dists}
            if self._chain:
                model: InputModel = TreeBoundaryInputs(
                    priors, self._chain, conditionals
                )
            else:
                model = FixedMarginalInputs(priors)
            if isinstance(self._estimator, SwitchingActivityEstimator):
                self._estimator.update_inputs(model)
            else:
                self._estimator.input_model = model
            result = self._estimator.estimate()
            residual = 0.0
            new_states: Dict[str, np.ndarray] = {}
            for present, nxt in self.state_map.items():
                updated = result.distributions[nxt]
                residual = max(
                    residual, float(np.abs(updated - state_dists[present]).max())
                )
                new_states[present] = updated
            state_dists = new_states
            if self._chain:
                new_conditionals = self._next_state_conditionals(state_dists)
                for child, rows in new_conditionals.items():
                    if child in conditionals:
                        residual = max(
                            residual,
                            float(np.abs(rows - conditionals[child]).max()),
                        )
                    else:
                        # First iteration: no previous conditional to
                        # compare against, so force another pass.
                        residual = max(residual, 1.0)
                conditionals = new_conditionals
            if residual < tol:
                converged = True
                break
        propagate_seconds = time.perf_counter() - start
        return SequentialEstimate(
            distributions=dict(result.distributions),
            iterations=iterations,
            converged=converged,
            residual=residual,
            compile_seconds=self.compile_seconds,
            propagate_seconds=propagate_seconds,
        )
