"""Primary-input statistics models.

An :class:`InputModel` supplies two views of the same stochastic process
on the primary inputs:

1. **CPDs** over the 4-state transition variables of the input lines,
   merged into the LIDAG (:meth:`InputModel.input_cpds`).  Models may
   add input-to-input edges (spatial correlation) as long as they stay
   acyclic.
2. **Vector-pair samples** for the logic-simulation ground truth
   (:meth:`InputModel.sample_pairs`), drawn from the *same* process so
   estimator and simulator are comparable.

Three models cover the paper's experiments and its "input modeling"
future-work extension:

- :class:`IndependentInputs` -- i.i.d. Bernoulli streams (the paper's
  pseudo-random inputs).
- :class:`TemporalInputs` -- per-input lag-1 Markov streams with a
  target switching activity.
- :class:`CorrelatedGroupInputs` -- spatially correlated groups layered
  on either temporal model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bayesian.cpd import TabularCPD
from repro.core.states import (
    N_STATES,
    current_values,
    independent_transition_distribution,
    markov_transition_distribution,
    previous_values,
)

ProbabilitySpec = Union[float, Mapping[str, float]]


def _per_input(spec: ProbabilitySpec, name: str, default: float) -> float:
    if isinstance(spec, Mapping):
        return float(spec.get(name, default))
    return float(spec)


def _prob_spec(value) -> ProbabilitySpec:
    """Normalize a JSON probability field: scalar or per-input mapping."""
    if isinstance(value, Mapping):
        return {str(k): float(v) for k, v in value.items()}
    return float(value)


def input_model_from_spec(spec: Mapping) -> "InputModel":
    """Build an :class:`InputModel` from a plain-dict (JSON-friendly) spec.

    The spec vocabulary is shared by the fuzz-reproducer files and the
    ``repro sweep`` scenario lists; the ``kind`` field selects the
    model class and the remaining fields are its parameters::

        {"kind": "independent", "p_one": 0.3}
        {"kind": "independent", "p_one": {"a": 0.9, "b": 0.1}}
        {"kind": "temporal", "p_one": 0.5, "activity": 0.2}
        {"kind": "trace", "trace": [[0,1],[1,1]], "input_names": ["a","b"]}
        {"kind": "correlated", "groups": [["a","b"]], "rho": 0.8,
         "base_p_one": 0.5}

    Probability fields accept a scalar (applied to every input) or a
    per-input mapping (missing names default to 0.5).  Raises
    :class:`~repro.errors.InputModelError` on an unknown ``kind``.
    """
    from repro.errors import InputModelError

    kind = spec.get("kind")
    if kind == "independent":
        return IndependentInputs(_prob_spec(spec.get("p_one", 0.5)))
    if kind == "temporal":
        return TemporalInputs(
            p_one=_prob_spec(spec.get("p_one", 0.5)),
            activity=_prob_spec(spec.get("activity", 0.5)),
        )
    if kind == "trace":
        return TraceInputs(
            np.asarray(spec["trace"], dtype=np.uint8),
            list(spec["input_names"]),
            smoothing=float(spec.get("smoothing", 1.0)),
        )
    if kind == "correlated":
        base = IndependentInputs(_prob_spec(spec.get("base_p_one", 0.5)))
        groups = [tuple(g) for g in spec.get("groups", [])]
        if not groups:
            return base
        return CorrelatedGroupInputs(groups, rho=float(spec["rho"]), base=base)
    raise InputModelError(f"unknown input-model kind {kind!r}")


class InputModel(ABC):
    """Joint stochastic model of the primary-input transition variables."""

    @abstractmethod
    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        """CPDs for the input-line nodes (roots and, for correlated
        models, input-to-input conditionals)."""

    @abstractmethod
    def sample_pairs(
        self, input_names: Sequence[str], n_pairs: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n_pairs`` consecutive-cycle vector pairs.

        Returns ``(previous, current)`` matrices of shape
        ``(n_pairs, len(input_names))`` with 0/1 entries.
        """

    @abstractmethod
    def marginal_distribution(self, name: str) -> np.ndarray:
        """The 4-state marginal distribution of one input line."""

    def sample_states(
        self, input_names: Sequence[str], n_pairs: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Transition-state samples, shape ``(n_pairs, n_inputs)``."""
        prev, curr = self.sample_pairs(input_names, n_pairs, rng)
        return (prev.astype(np.int64) << 1) | curr.astype(np.int64)

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        """Like :meth:`input_cpds`, but may skip CPD re-validation.

        Batched scenario sweeps call this K times per ``estimate_many``;
        the in-repo models override it to build their (normalized by
        construction) tables through :meth:`TabularCPD._trusted`, which
        skips the row-sum check that dominates large sweeps.  The
        default simply delegates, so third-party models stay correct
        without opting in.
        """
        return self.input_cpds(input_names)

    def _trusted_priors(self, input_names: Sequence[str]) -> List[TabularCPD]:
        """Root-node CPDs from :meth:`marginal_distribution`, unvalidated."""
        return [
            TabularCPD._trusted(
                name,
                np.asarray(self.marginal_distribution(name), dtype=np.float64),
            )
            for name in input_names
        ]


class IndependentInputs(InputModel):
    """Spatially independent, temporally independent input streams.

    Parameters
    ----------
    p_one:
        Probability of each input being 1, either a scalar applied to
        all inputs or a per-input mapping (missing names default to 0.5).
    """

    def __init__(self, p_one: ProbabilitySpec = 0.5):
        self.p_one = p_one

    def _p(self, name: str) -> float:
        p = _per_input(self.p_one, name, 0.5)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p_one for {name!r} out of [0, 1]: {p}")
        return p

    def marginal_distribution(self, name: str) -> np.ndarray:
        return independent_transition_distribution(self._p(name))

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return [
            TabularCPD.prior(name, self.marginal_distribution(name))
            for name in input_names
        ]

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return self._trusted_priors(input_names)

    def sample_pairs(self, input_names, n_pairs, rng):
        probs = np.array([self._p(n) for n in input_names])
        prev = (rng.random((n_pairs, len(input_names))) < probs).astype(np.uint8)
        curr = (rng.random((n_pairs, len(input_names))) < probs).astype(np.uint8)
        return prev, curr


class TemporalInputs(InputModel):
    """Per-input stationary lag-1 Markov streams.

    Parameters
    ----------
    p_one:
        Stationary P(1) per input (scalar or mapping).
    activity:
        Target switching activity per input (scalar or mapping).  Must
        satisfy ``activity / 2 <= min(p, 1 - p)`` per input.
    """

    def __init__(self, p_one: ProbabilitySpec = 0.5, activity: ProbabilitySpec = 0.5):
        self.p_one = p_one
        self.activity = activity

    def _params(self, name: str) -> Tuple[float, float]:
        return (
            _per_input(self.p_one, name, 0.5),
            _per_input(self.activity, name, 0.5),
        )

    def marginal_distribution(self, name: str) -> np.ndarray:
        p, a = self._params(name)
        return markov_transition_distribution(p, a)

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return [
            TabularCPD.prior(name, self.marginal_distribution(name))
            for name in input_names
        ]

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return self._trusted_priors(input_names)

    def sample_pairs(self, input_names, n_pairs, rng):
        n = len(input_names)
        prev = np.empty((n_pairs, n), dtype=np.uint8)
        curr = np.empty((n_pairs, n), dtype=np.uint8)
        for j, name in enumerate(input_names):
            dist = self.marginal_distribution(name)
            states = rng.choice(N_STATES, size=n_pairs, p=dist)
            prev[:, j] = previous_values(states)
            curr[:, j] = current_values(states)
        return prev, curr


class TraceInputs(InputModel):
    """Input statistics estimated from a recorded vector trace.

    Real workloads rarely come as closed-form statistics; this model
    takes a recorded stream of input vectors (consecutive rows =
    consecutive cycles), estimates each input's 4-state transition
    distribution from the observed consecutive pairs (with add-one
    smoothing so no state gets exactly zero mass), and resamples the
    recorded pairs for simulation.

    Spatial correlation within the trace is preserved by the sampler
    (whole rows are resampled) but, as with all marginal-based models,
    only the per-line marginals enter the LIDAG priors -- wire a
    :class:`CorrelatedGroupInputs` on top when cross-input correlation
    must reach the estimator.

    Parameters
    ----------
    trace:
        Array of shape ``(n_cycles, n_inputs)`` with 0/1 entries.
    input_names:
        Column names, one per trace column.
    smoothing:
        Add-``smoothing`` pseudo-counts per transition state.
    """

    def __init__(
        self,
        trace: np.ndarray,
        input_names: Sequence[str],
        smoothing: float = 1.0,
    ):
        trace = np.asarray(trace)
        if trace.ndim != 2 or trace.shape[0] < 2:
            raise ValueError("trace must be (n_cycles >= 2, n_inputs)")
        if trace.shape[1] != len(input_names):
            raise ValueError(
                f"trace has {trace.shape[1]} columns for {len(input_names)} names"
            )
        if not np.isin(trace, (0, 1)).all():
            raise ValueError("trace entries must be 0/1")
        if smoothing < 0:
            raise ValueError("smoothing must be >= 0")
        self._names = list(input_names)
        self._trace = trace.astype(np.uint8)
        states = (self._trace[:-1].astype(np.int64) << 1) | self._trace[1:]
        self._distributions: Dict[str, np.ndarray] = {}
        for j, name in enumerate(self._names):
            counts = np.bincount(states[:, j], minlength=N_STATES).astype(np.float64)
            counts += smoothing
            self._distributions[name] = counts / counts.sum()

    def marginal_distribution(self, name: str) -> np.ndarray:
        if name not in self._distributions:
            raise KeyError(f"input {name!r} not in the trace")
        return self._distributions[name]

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return [
            TabularCPD.prior(name, self.marginal_distribution(name))
            for name in input_names
        ]

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return self._trusted_priors(input_names)

    def sample_pairs(self, input_names, n_pairs, rng):
        columns = [self._names.index(name) for name in input_names]
        picks = rng.integers(0, self._trace.shape[0] - 1, size=n_pairs)
        prev = self._trace[picks][:, columns]
        curr = self._trace[picks + 1][:, columns]
        return prev, curr


class CorrelatedGroupInputs(InputModel):
    """Spatially correlated input groups over a base temporal model.

    Within each group the inputs form a chain: the first is drawn from
    the base model's marginal; each subsequent input *copies* its
    predecessor's transition state with probability ``rho`` and draws a
    fresh state from its own base marginal otherwise.  The chain maps
    directly onto extra input-to-input LIDAG edges, demonstrating the
    paper's claim that input correlations fit the same BN machinery.

    The copy process shifts marginals: a chained member's marginal is
    ``rho * marginal(predecessor) + (1 - rho) * base(member)``, which
    equals its base marginal only when the whole group shares one base
    distribution.  :meth:`marginal_distribution` reports this *implied*
    marginal so that it, the CPDs, and :meth:`sample_pairs` all describe
    the same joint (the differential fuzz harness caught the earlier
    inconsistency, which made the segmented backend report base
    marginals for correlated inputs while exact propagation produced
    the chain-implied ones).

    Parameters
    ----------
    base:
        Underlying per-input model (defaults to fair independent inputs).
    groups:
        Iterable of input-name tuples to correlate (disjoint).
    rho:
        Copy probability in [0, 1]; 0 reduces to the base model.
    """

    def __init__(
        self,
        groups: Iterable[Sequence[str]],
        rho: float,
        base: Optional[InputModel] = None,
    ):
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        self.base = base if base is not None else IndependentInputs(0.5)
        self.groups = [tuple(g) for g in groups]
        self.rho = rho
        seen: set = set()
        for group in self.groups:
            if len(group) < 2:
                raise ValueError("correlation groups need at least 2 inputs")
            for name in group:
                if name in seen:
                    raise ValueError(f"input {name!r} appears in two groups")
                seen.add(name)
        #: map from input name to its in-group predecessor
        self._predecessor: Dict[str, str] = {}
        for group in self.groups:
            for prev_name, name in zip(group, group[1:]):
                self._predecessor[name] = prev_name

    def marginal_distribution(self, name: str) -> np.ndarray:
        """Chain-implied marginal (equals the base marginal for roots)."""
        parent = self._predecessor.get(name)
        if parent is None:
            return self.base.marginal_distribution(name)
        return (
            self.rho * self.marginal_distribution(parent)
            + (1.0 - self.rho) * self.base.marginal_distribution(name)
        )

    def input_cpds(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return self._build_cpds(input_names, trusted=False)

    def input_cpds_trusted(self, input_names: Sequence[str]) -> List[TabularCPD]:
        return self._build_cpds(input_names, trusted=True)

    def _build_cpds(
        self, input_names: Sequence[str], trusted: bool
    ) -> List[TabularCPD]:
        available = set(input_names)
        cpds: List[TabularCPD] = []
        for name in input_names:
            parent = self._predecessor.get(name)
            if parent is None or parent not in available:
                # Parent absent: marginalizing the chain over it leaves
                # exactly the implied marginal as this input's prior.
                dist = self.marginal_distribution(name)
                if trusted:
                    cpds.append(
                        TabularCPD._trusted(
                            name, np.asarray(dist, dtype=np.float64)
                        )
                    )
                else:
                    cpds.append(TabularCPD.prior(name, dist))
            else:
                fresh = self.base.marginal_distribution(name)
                table = np.empty((N_STATES, N_STATES))
                for parent_state in range(N_STATES):
                    row = (1.0 - self.rho) * fresh
                    row[parent_state] += self.rho
                    table[parent_state] = row
                if trusted:
                    cpds.append(TabularCPD._trusted(name, table, [parent]))
                else:
                    cpds.append(TabularCPD(name, N_STATES, table, [parent]))
        return cpds

    def sample_pairs(self, input_names, n_pairs, rng):
        index = {name: j for j, name in enumerate(input_names)}
        # Fill roots first, then chain successors in group order, so a
        # predecessor's states exist before its dependents copy them.
        ordered = [n for n in input_names if n not in self._predecessor]
        for group in self.groups:
            ordered.extend(n for n in group[1:] if n in index)
        states = np.empty((n_pairs, len(input_names)), dtype=np.int64)
        for name in ordered:
            j = index[name]
            parent = self._predecessor.get(name)
            if parent is None or parent not in index:
                # Roots (and orphans whose parent is not sampled) draw
                # from the implied marginal so subsets stay consistent.
                dist = self.marginal_distribution(name)
                states[:, j] = rng.choice(N_STATES, size=n_pairs, p=dist)
            else:
                # The fresh part of the copy process uses the *base*
                # marginal; copying the parent supplies the rest.
                fresh = rng.choice(
                    N_STATES, size=n_pairs, p=self.base.marginal_distribution(name)
                )
                copy_mask = rng.random(n_pairs) < self.rho
                states[:, j] = np.where(copy_mask, states[:, index[parent]], fresh)
        return (
            previous_values(states).astype(np.uint8),
            current_values(states).astype(np.uint8),
        )
