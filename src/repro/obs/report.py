"""Export an instrumented run as JSON or as a human-readable tree/table.

The JSON form is the machine interface of the observability layer: CI
validates it, benchmark runners embed it, and future regression tooling
diffs it.  Its shape is versioned (:data:`SCHEMA`, :data:`SCHEMA_VERSION`)
and guarded by :func:`validate_report`, so the format cannot drift
silently -- bump the version when the shape changes.

Report shape (version 2; v2 added the p50/p90/p99 percentile fields to
histogram summaries)::

    {
      "schema": "repro.obs/v2",
      "schema_version": 2,
      "meta": {...},                      # free-form, str keys
      "spans": [                          # root spans, recursive
        {"name": str, "start": float, "duration": float,
         "attributes": {...}, "children": [...]},
      ],
      "metrics": {
        "counters": {name: int},
        "gauges": {name: float},
        "histograms": {name: {"count": int, "sum": float, "min": float,
                              "max": float, "mean": float, "p50": float,
                              "p90": float, "p99": float}},
      },
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import Tracer, get_tracer

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "build_report",
    "validate_report",
    "check_span_containment",
    "render_report",
]

SCHEMA = "repro.obs/v2"
SCHEMA_VERSION = 2

#: histogram export keys, in rendering order
_HISTOGRAM_KEYS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")


def build_report(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the versioned report from a tracer + metrics registry.

    Defaults to the process-global instances; ``meta`` carries run
    context (circuit name, command line, ...).
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "spans": [span.to_dict() for span in tracer.roots],
        "metrics": metrics.snapshot(),
    }


def _fail(message: str) -> None:
    raise ValueError(f"invalid obs report: {message}")


def _validate_span(span: Any, path: str) -> None:
    if not isinstance(span, dict):
        _fail(f"{path} is not an object")
    for key, kind in (
        ("name", str),
        ("start", (int, float)),
        ("duration", (int, float)),
        ("attributes", dict),
        ("children", list),
    ):
        if key not in span:
            _fail(f"{path} is missing {key!r}")
        if not isinstance(span[key], kind):
            _fail(f"{path}.{key} has type {type(span[key]).__name__}")
    if span["duration"] < 0:
        _fail(f"{path}.duration is negative")
    for i, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{i}]")


def validate_report(report: Any) -> Dict[str, Any]:
    """Validate a report against the version-1 schema.

    Raises :class:`ValueError` with a pointed message on any drift;
    returns the report unchanged on success so calls can be inlined.
    """
    if not isinstance(report, dict):
        _fail("top level is not an object")
    if report.get("schema") != SCHEMA:
        _fail(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    if report.get("schema_version") != SCHEMA_VERSION:
        _fail(
            f"schema_version is {report.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    if not isinstance(report.get("meta"), dict):
        _fail("meta is not an object")
    if not isinstance(report.get("spans"), list):
        _fail("spans is not a list")
    for i, span in enumerate(report["spans"]):
        _validate_span(span, f"spans[{i}]")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        _fail("metrics is not an object")
    for family in ("counters", "gauges", "histograms"):
        table = metrics.get(family)
        if not isinstance(table, dict):
            _fail(f"metrics.{family} is not an object")
        for name, value in table.items():
            if not isinstance(name, str):
                _fail(f"metrics.{family} has a non-string key")
            if family == "histograms":
                if not isinstance(value, dict) or set(value) != set(_HISTOGRAM_KEYS):
                    _fail(f"metrics.histograms[{name!r}] has wrong keys")
                if any(not isinstance(value[k], (int, float)) for k in value):
                    _fail(f"metrics.histograms[{name!r}] has non-numeric fields")
            elif not isinstance(value, (int, float)):
                _fail(f"metrics.{family}[{name!r}] is not numeric")
    return report


def check_span_containment(report: Dict[str, Any], slack: float = 1e-6) -> None:
    """Assert every child span's interval lies inside its parent's.

    This is the cross-thread-safe consistency invariant: children may
    overlap each other (parallel segments), but a parent never closes
    before its children do, so child intervals are contained in the
    parent interval up to clock ``slack``.  Raises :class:`ValueError`
    on violation.
    """

    def walk(span: Dict[str, Any], path: str) -> None:
        start = span["start"]
        end = start + span["duration"]
        for i, child in enumerate(span["children"]):
            child_path = f"{path} > {child['name']}"
            if child["start"] < start - slack:
                _fail(f"{child_path} starts before its parent")
            if child["start"] + child["duration"] > end + slack:
                _fail(f"{child_path} ends after its parent")
            walk(child, child_path)

    for span in report.get("spans", []):
        walk(span, span["name"])


def _span_lines(span: Dict[str, Any], depth: int, lines: List[str]) -> None:
    attrs = span["attributes"]
    shown = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    suffix = f"  [{shown}]" if shown else ""
    lines.append(
        f"{'  ' * depth}{span['name']:<{max(40 - 2 * depth, 8)}s}"
        f" {span['duration'] * 1e3:10.3f} ms{suffix}"
    )
    for child in span["children"]:
        _span_lines(child, depth + 1, lines)


def render_report(report: Dict[str, Any]) -> str:
    """Human rendering: span tree plus metrics tables."""
    from repro.analysis.tables import format_table

    lines: List[str] = []
    meta = report.get("meta", {})
    if meta:
        shown = ", ".join(f"{k}={meta[k]}" for k in sorted(meta))
        lines.append(f"run: {shown}")
        lines.append("")
    if report["spans"]:
        lines.append("Spans")
        lines.append("=====")
        for span in report["spans"]:
            _span_lines(span, 0, lines)
        lines.append("")
    metrics = report["metrics"]
    if metrics["counters"]:
        rows = [[k, v] for k, v in metrics["counters"].items()]
        lines.append(format_table(["counter", "value"], rows))
        lines.append("")
    if metrics["gauges"]:
        rows = [[k, v] for k, v in metrics["gauges"].items()]
        lines.append(format_table(["gauge", "value"], rows))
        lines.append("")
    if metrics["histograms"]:
        rows = [
            [k] + [v[key] for key in _HISTOGRAM_KEYS]
            for k, v in metrics["histograms"].items()
        ]
        lines.append(format_table(["histogram", *_HISTOGRAM_KEYS], rows))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
