"""Zero-dependency instrumentation: tracing spans, metrics, reports.

Everything is off by default -- the instrumented pipeline pays ~nothing
until a caller opts in::

    from repro import obs

    obs.enable()                      # tracer + metrics, fresh state
    estimator.estimate()
    report = obs.build_report(meta={"circuit": "c432s"})
    print(obs.render_report(report))
    obs.disable()

See :mod:`repro.obs.trace` (spans), :mod:`repro.obs.metrics`
(counters/gauges/histograms) and :mod:`repro.obs.report` (versioned
JSON export + human rendering).
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.report import (
    SCHEMA,
    SCHEMA_VERSION,
    build_report,
    check_span_containment,
    render_report,
    validate_report,
)
from repro.obs.trace import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "SCHEMA",
    "SCHEMA_VERSION",
    "build_report",
    "check_span_containment",
    "render_report",
    "validate_report",
    "get_tracer",
    "set_tracer",
    "get_metrics",
    "set_metrics",
    "enable",
    "disable",
    "reset",
    "snapshot",
    "enable_tracing",
    "disable_tracing",
    "enable_metrics",
    "disable_metrics",
]


def enable(reset: bool = True) -> None:
    """Turn on the global tracer and metrics registry together."""
    enable_tracing(reset=reset)
    enable_metrics(reset=reset)


def disable() -> None:
    """Turn both off (recorded data is kept until :func:`reset`)."""
    disable_tracing()
    disable_metrics()


def reset() -> None:
    """Clear recorded spans and instruments without changing state."""
    get_tracer().reset()
    get_metrics().reset()


def snapshot():
    """Point-in-time export of the global metrics registry.

    The hook :mod:`repro.perf` uses to embed counters/gauges/histogram
    summaries (including p50/p90/p99) inside a recorded perf profile.
    """
    return get_metrics().snapshot()
