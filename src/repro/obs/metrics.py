"""Counters, gauges and histograms for the observability layer.

Complements :mod:`repro.obs.trace`: spans say *where time went*,
metrics say *how much work was done* -- messages passed, dirty cliques
skipped versus repropagated, einsum FLOP estimates, per-clique
state-space sizes, peak factor bytes.

Same invariants as the tracer (DESIGN.md section 8):

- **Off by default.**  The process-global registry returned by
  :func:`get_metrics` starts disabled; while disabled every accessor
  returns shared null instruments whose mutators are no-ops, so
  instrumented hot paths cost one attribute check.  Producers that
  batch their updates (the propagation engine publishes one aggregated
  delta per propagation) should guard on ``registry.enabled`` and skip
  the call entirely.
- **Thread safety.**  Instrument creation and every mutation take a
  lock, so counters aggregated from ``SegmentedEstimator`` worker
  threads sum exactly as in a serial run.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Any, Dict, List

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "enable_metrics",
    "disable_metrics",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def to_value(self) -> int:
        return self._value


class Gauge:
    """Last/extreme/accumulated value of a quantity.

    ``set`` overwrites, ``set_max`` keeps the maximum seen (peak
    memory, largest clique), ``add`` accumulates (total state space
    across segment trees).
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_value(self) -> float:
        return self._value


class Histogram:
    """Streaming summary of observations with percentile estimates.

    Running aggregates (count/sum/min/max/mean) plus a bounded
    reservoir of :data:`Histogram.RESERVOIR_SIZE` samples for
    p50/p90/p99 -- observing stays O(1) and memory stays fixed no
    matter how many values stream through.  Until the reservoir fills,
    percentiles are exact; past that they are the standard
    uniformly-sampled estimate.  The reservoir RNG is seeded per
    instance, so a deterministic observation sequence yields a
    deterministic export (perf profiles embedding these summaries must
    be reproducible).
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_samples", "_rng", "_lock")

    #: retained-sample cap; percentiles are exact below it.
    RESERVOIR_SIZE = 1024

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: List[float] = []
        self._rng = random.Random(0x9E3779B9)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.RESERVOIR_SIZE:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.RESERVOIR_SIZE:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the
        retained samples; 0.0 when nothing was observed."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = math.ceil(q / 100.0 * len(samples))
        return samples[min(len(samples) - 1, max(rank - 1, 0))]

    def to_value(self) -> Dict[str, float]:
        with self._lock:
            if self._count == 0:
                return {
                    "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                }
            samples = sorted(self._samples)
            summary = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
            }
        for key, q in (("p50", 50.0), ("p90", 90.0), ("p99", 99.0)):
            rank = math.ceil(q / 100.0 * len(samples))
            summary[key] = samples[min(len(samples) - 1, max(rank - 1, 0))]
        return summary


class _NullInstrument:
    """Shared do-nothing stand-in returned while the registry is off."""

    __slots__ = ()

    name = ""
    value = 0
    count = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def to_value(self) -> int:
        return 0


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- control ------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every instrument (names re-create lazily)."""
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}

    # -- instruments --------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    # -- export -------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time JSON-ready dump of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.to_value() for k, v in sorted(counters.items())},
            "gauges": {k: v.to_value() for k, v in sorted(gauges.items())},
            "histograms": {k: v.to_value() for k, v in sorted(histograms.items())},
        }


#: process-global registry; disabled until :func:`enable_metrics`.
_default_metrics = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry (no-op unless enabled)."""
    return _default_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default_metrics
    previous = _default_metrics
    _default_metrics = registry
    return previous


def enable_metrics(reset: bool = True) -> MetricsRegistry:
    """Enable the global registry (optionally clearing instruments)."""
    if reset:
        _default_metrics.reset()
    _default_metrics.enable()
    return _default_metrics


def disable_metrics() -> MetricsRegistry:
    """Disable the global registry (instruments are kept)."""
    _default_metrics.disable()
    return _default_metrics
