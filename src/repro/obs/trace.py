"""Nested tracing spans with a no-op-by-default process-global tracer.

The paper's asymmetric cost claim (compile once, re-propagate in
milliseconds) is only as credible as our ability to say *where* the
time goes.  This module provides the span half of the observability
layer: a :class:`Tracer` whose :meth:`Tracer.span` context manager
records wall-clock intervals in a nested tree, one stack per thread.

Design invariants (see DESIGN.md section 8):

- **Off by default.**  The process-global tracer returned by
  :func:`get_tracer` starts disabled.  A disabled tracer still *times*
  the span (two ``perf_counter`` calls and one small object, so code
  like the estimator can read ``span.duration`` functionally) but
  retains nothing: no attributes, no tree, no locks.  Hot paths pay
  ~nothing when tracing is off.
- **Thread safety.**  Each thread keeps its own span stack in
  ``threading.local`` storage; finished root spans append to the
  tracer's shared list under a lock.  A span started on a worker
  thread can be parented under a span owned by another thread by
  passing ``parent=`` explicitly (the segmented estimator does this so
  per-segment spans nest under their level span).
- **Exception safety.**  A span always closes, records its duration,
  and is annotated with ``error=<ExceptionType>`` when its body raises;
  the exception propagates unchanged.

Spans use :func:`time.perf_counter` timestamps, so intervals from
different spans of one process are directly comparable (the report
layer exploits this for parent/child containment checks).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
]


class Span:
    """One timed interval in the trace tree.

    ``start`` and ``end`` are :func:`time.perf_counter` timestamps;
    ``children`` are spans fully contained in this one (same thread, or
    explicitly parented cross-thread).
    """

    __slots__ = ("name", "attributes", "start", "end", "children", "_lock")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = attributes if attributes is not None else {}
        self.start: float = 0.0
        self.end: float = 0.0
        self.children: List["Span"] = []
        self._lock = threading.Lock()

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return max(self.end - self.start, 0.0) if self.end else 0.0

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to an open (or closed) span."""
        self.attributes.update(attributes)

    def _add_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (recursive)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, children={len(self.children)})"


class _DetachedSpan:
    """Timing-only span used when the tracer is disabled.

    Measures wall time (so ``duration`` stays meaningful to callers)
    but drops attributes and never joins a tree.
    """

    __slots__ = ("start", "end")

    name = ""
    children: List[Span] = []

    def __init__(self) -> None:
        self.start = 0.0
        self.end = 0.0

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0) if self.end else 0.0

    def annotate(self, **attributes: Any) -> None:
        pass


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attributes", "_parent", "_span")

    def __init__(self, tracer, name, attributes, parent):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._parent = parent
        self._span = None

    def __enter__(self):
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            span = _DetachedSpan()
        else:
            span = Span(self._name, self._attributes)
            tracer._push(span, self._parent)
        self._span = span
        span.start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb):
        span = self._span
        span.end = time.perf_counter()
        if isinstance(span, Span):
            if exc_type is not None:
                span.annotate(error=exc_type.__name__)
            self._tracer._pop(span, self._parent)
        return False


class Tracer:
    """Collects nested spans; thread-safe; cheap when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- control ------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans (open stacks are per-thread and kept)."""
        with self._lock:
            self._roots = []

    # -- recording ----------------------------------------------------

    def span(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> _SpanContext:
        """Open a span.  Use as ``with tracer.span("triangulate", circuit=name):``.

        ``parent`` explicitly parents the span (cross-thread nesting);
        otherwise the innermost open span of the *current thread* is
        the parent, and a span opened on a bare thread becomes a root.
        """
        return _SpanContext(self, name, attributes, parent)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span, parent: Optional[Span]) -> None:
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        if parent is not None:
            parent._add_child(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span, parent: Optional[Span]) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- results ------------------------------------------------------

    @property
    def roots(self) -> List[Span]:
        """Finished (and still-open) top-level spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def find(self, name: str) -> List[Span]:
        """All recorded spans with the given name (depth-first order)."""
        found: List[Span] = []

        def walk(span: Span) -> None:
            if span.name == name:
                found.append(span)
            for child in span.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return found


#: process-global tracer; disabled until :func:`enable_tracing`.
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (no-op unless enabled)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def enable_tracing(reset: bool = True) -> Tracer:
    """Enable the global tracer (optionally clearing prior spans)."""
    if reset:
        _default_tracer.reset()
    _default_tracer.enable()
    return _default_tracer


def disable_tracing() -> Tracer:
    """Disable the global tracer (recorded spans are kept)."""
    _default_tracer.disable()
    return _default_tracer
