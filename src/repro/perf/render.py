"""Human rendering of perf history: trajectory tables and diff lines.

``render_log`` is the `repro perf log` view: one column per recorded
version (newest last), one row per (circuit, metric), so a metric's
trajectory across SHAs reads left to right.  ``render_diff`` is the
one-line-per-record view shared by ``repro perf diff`` and
``benchmarks/bench_diff.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.tables import format_table

__all__ = ["render_diff", "render_log", "version_label"]

#: metrics shown by the log view, in order; rate tables expand to one
#: row per batch size.
_LOG_METRICS = (
    "repeat_estimate_min_seconds",
    "batched_scenarios_per_sec",
    "max_abs_error",
    "mean_activity",
)

_STATUS_FLAGS = {
    "ok": " ",
    "skipped": "~",
    "missing": "?",
    "regression": "!",
    "accuracy": "#",
}


def version_label(profile: Dict[str, Any]) -> str:
    """Column label for one recorded version: short SHA, ``*`` if the
    working tree was dirty when recorded."""
    git = profile.get("git", {})
    label = git.get("short") or git.get("sha", "?")[:10]
    return f"{label}*" if git.get("dirty") else label


def _metric_rows(
    profiles: List[Dict[str, Any]],
    metric_filter: Optional[str],
    circuit_filter: Optional[str],
) -> List[Tuple[str, str]]:
    """Ordered union of (circuit, metric-row) keys across versions."""
    rows: List[Tuple[str, str]] = []
    seen = set()
    for profile in profiles:
        for circuit, block in sorted(profile["measurements"].items()):
            if circuit_filter is not None and circuit != circuit_filter:
                continue
            for metric in _LOG_METRICS:
                if metric_filter is not None and metric != metric_filter:
                    continue
                value = block.get(metric)
                if value is None:
                    continue
                if isinstance(value, dict):
                    keys = [f"{metric}[K={k}]" for k in sorted(value, key=int)]
                else:
                    keys = [metric]
                for key in keys:
                    if (circuit, key) not in seen:
                        seen.add((circuit, key))
                        rows.append((circuit, key))
    return rows


def _cell(block: Dict[str, Any], metric_key: str) -> Any:
    if "[K=" in metric_key:
        metric, batch = metric_key[:-1].split("[K=")
        table = block.get(metric)
        if isinstance(table, dict) and batch in table:
            return float(table[batch])
        return float("nan")
    value = block.get(metric_key)
    return float(value) if value is not None else float("nan")


def render_log(
    profiles: List[Dict[str, Any]],
    metric: Optional[str] = None,
    circuit: Optional[str] = None,
) -> str:
    """Trajectory table: rows are (circuit, metric), columns versions.

    ``profiles`` is oldest-first (the store's order); absent cells
    render as ``-`` (a quick recording covers fewer circuits than a
    full one).
    """
    if not profiles:
        return "perf log: no recorded profiles\n"
    header_lines = []
    for i, profile in enumerate(profiles):
        fp = profile.get("fingerprint", {})
        header_lines.append(
            f"  {version_label(profile):>12s}  {profile.get('recorded_at', '?')}"
            f"  machine {fp.get('digest', '?')}"
            + (f"  ({profile['note']})" if profile.get("note") else "")
        )
    keys = _metric_rows(profiles, metric, circuit)
    if not keys:
        wanted = f"metric {metric!r}" if metric else "the log metrics"
        return (
            "\n".join(header_lines)
            + f"\nperf log: no measurements matching {wanted}\n"
        )
    table_rows = []
    for circuit_name, metric_key in keys:
        cells: List[Any] = [circuit_name, metric_key]
        for profile in profiles:
            block = profile["measurements"].get(circuit_name)
            cells.append(
                _cell(block, metric_key) if block is not None else float("nan")
            )
        table_rows.append(cells)
    headers = ["circuit", "metric"] + [version_label(p) for p in profiles]
    return (
        "\n".join(header_lines)
        + "\n\n"
        + format_table(headers, table_rows, precision=6)
        + "\n"
    )


def render_diff(records: List[Dict[str, Any]]) -> str:
    """One line per compared record, worst problems flagged.

    Flags: ``!`` perf regression, ``#`` accuracy drift, ``~`` skipped
    (below the timing floor), ``?`` missing from the new side.
    """
    lines = []
    for record in records:
        key = record["key"]
        if isinstance(key, tuple):
            key = ",".join(str(part) for part in key)
        flag = _STATUS_FLAGS.get(record["status"], "?")
        if record["status"] == "missing":
            lines.append(f"{flag} {key:>16s}  (not in new profile)  missing")
            continue
        lines.append(
            f"{flag} {key:>16s}  {record['metric']}  "
            f"old {record['old']:12.6g}  new {record['new']:12.6g}  "
            f"x{record['ratio']:.3f}  {record['status']}"
        )
    return "\n".join(lines) + ("\n" if lines else "")
