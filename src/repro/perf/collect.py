"""Collect a perf profile: run the measurements or ingest bench JSON.

This module is the single home of the measurement methodology that
``benchmarks/bench_propagation.py`` and ``benchmarks/bench_throughput.py``
previously each reimplemented (``benchmarks/common.py`` now re-exports
from here):

- the junction-tree-first / segmented-fallback compile rule the CLI
  uses,
- the fixed input-probability sweep cycled through repeat-propagation,
- golden-ratio scenario salting (no two repeats install identical
  potentials, so the skip-unchanged fast path never turns a repeat
  into a no-op),
- **min over repeats** as the primary statistic: the minimum is the
  least noise-contaminated observation of a deterministic code path's
  true cost (noise on a busy machine is strictly additive), so it is
  what version-to-version comparisons use.

:func:`collect_profile` runs the measurements live (with the obs
metrics registry enabled, so the profile carries FLOP estimates,
``factor_bytes``, support density and cache counters next to the
timings); :func:`ingest_bench_documents` builds the same profile shape
from already-emitted ``BENCH_propagation.json`` /
``BENCH_throughput.json`` reports.  Accuracy is part of the profile,
not an afterthought: where the enumeration oracle is feasible the
worst per-line distribution error is recorded (``max_abs_error``), so
the regression gate catches a kernel that got *fast but wrong*.
"""

from __future__ import annotations

import subprocess
import time
from datetime import datetime, timezone
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.circuits import suite
from repro.core.backend import CliqueBudgetExceeded, compile_model
from repro.core.backend import estimate as facade_estimate
from repro.core.inputs import IndependentInputs
from repro.core.states import N_STATES
from repro.errors import PerfProfileError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.perf.fingerprint import machine_fingerprint
from repro.perf.store import PROFILE_SCHEMA, PROFILE_SCHEMA_VERSION

__all__ = [
    "DEFAULT_CIRCUITS",
    "PHI",
    "SWEEP",
    "collect_profile",
    "compile_or_fallback",
    "git_revision",
    "ingest_bench_documents",
    "measure_circuit",
    "repeat_cycles",
    "salted_scenarios",
    "timed",
]

#: Circuits profiled by default (the benchmark runners' suite).
DEFAULT_CIRCUITS = ["c17", "alu", "comp", "voter", "pcler8", "c432s"]

#: Input probabilities cycled through the repeat-propagation phase.
SWEEP = [0.2, 0.35, 0.5, 0.65, 0.8]

#: Golden-ratio increment: scenario probabilities fill (0.05, 0.95)
#: quasi-uniformly, and the per-repeat salt shifts the whole set so no
#: two repeats install identical potentials.
PHI = 0.6180339887498949

#: Enumeration-oracle budget on joint input states (4^k); circuits
#: whose input count fits record ``max_abs_error`` against the oracle.
DEFAULT_ORACLE_BUDGET = N_STATES ** 8


def timed(fn, *args) -> float:
    """Seconds for one call."""
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def salted_scenarios(k: int, salt: int) -> List[IndependentInputs]:
    """``k`` deterministic quasi-uniform scenarios, shifted by ``salt``."""
    return [
        IndependentInputs(0.05 + 0.9 * ((i * PHI + salt * 0.2718 + 0.041) % 1.0))
        for i in range(k)
    ]


def compile_or_fallback(circuit, parallelism: int = 0, kernel: str = "auto"):
    """Junction tree first, segmented past the clique budget (CLI rule).

    Returns ``(compiled_model, method)`` with ``method`` one of
    ``"single-bn"`` / ``"segmented"``.
    """
    try:
        model = compile_model(
            circuit,
            backend="junction-tree",
            max_clique_states=4 ** 10,
            kernel=kernel,
        )
        return model, "single-bn"
    except CliqueBudgetExceeded:
        model = compile_model(
            circuit, backend="segmented", parallelism=parallelism, kernel=kernel
        )
        return model, "segmented"


def repeat_cycles(
    estimator, repeats: int, sweep: Sequence[float] = SWEEP
) -> List[float]:
    """Seconds per ``update_inputs`` + ``estimate`` cycle over ``sweep``."""
    cycle_seconds = []
    for i in range(repeats):
        model = IndependentInputs(sweep[i % len(sweep)])
        start = time.perf_counter()
        estimator.update_inputs(model)
        estimator.estimate()
        cycle_seconds.append(time.perf_counter() - start)
    return cycle_seconds


def git_revision(cwd: Optional[str] = None) -> Dict[str, Any]:
    """Current git SHA + dirty flag; degrades to ``"unknown"`` outside
    a repository (profiles stay recordable from exported tarballs)."""

    def _git(*args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", *args],
                capture_output=True,
                text=True,
                cwd=cwd,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout

    sha = (_git("rev-parse", "HEAD") or "unknown").strip() or "unknown"
    status = _git("status", "--porcelain")
    dirty = bool(status.strip()) if status is not None else False
    return {"sha": sha, "short": sha[:10], "dirty": dirty}


def measure_circuit(
    name: str,
    repeats: int = 3,
    batch_sizes: Iterable[int] = (64,),
    parallelism: int = 0,
    kernel: str = "auto",
    oracle_budget: int = DEFAULT_ORACLE_BUDGET,
) -> Dict[str, Any]:
    """One circuit's measurement block (see the store's profile shape).

    Times the compile, the repeat-propagation fast path (min over
    ``repeats`` fresh-statistics cycles), and the batched sweep rate at
    each ``batch_sizes`` entry; records accuracy (``mean_activity`` at
    fair-coin inputs, plus ``max_abs_error`` against the enumeration
    oracle when ``4^inputs`` fits ``oracle_budget``).
    """
    circuit = suite.load_circuit(name)
    measurements: Dict[str, Any] = {"gates": circuit.num_gates}

    start = time.perf_counter()
    model, method = compile_or_fallback(circuit, parallelism, kernel)
    measurements["compile_seconds"] = time.perf_counter() - start
    measurements["method"] = method
    measurements["kernel"] = kernel
    estimator = model.estimator

    measurements["first_estimate_seconds"] = timed(estimator.estimate)

    cycles = repeat_cycles(estimator, repeats)
    measurements["repeat_estimate_min_seconds"] = min(cycles)
    measurements["repeat_estimate_seconds_samples"] = cycles

    if hasattr(estimator, "support_stats"):
        stats = estimator.support_stats()
        measurements["support_density"] = stats["support_density"]
        measurements["sparse_cliques"] = stats["sparse_cliques"]

    rates: Dict[str, float] = {}
    for k in batch_sizes:
        # Warm once outside timing so the one-time batch-engine
        # allocation is excluded (same protocol as bench_throughput).
        model.query_many(salted_scenarios(k, repeats + 1))
        best = min(
            timed(model.query_many, salted_scenarios(k, r))
            for r in range(repeats)
        )
        rates[str(k)] = k / best
    if rates:
        measurements["batched_scenarios_per_sec"] = rates

    fair = IndependentInputs(0.5)
    estimator.update_inputs(fair)
    estimate = estimator.estimate()
    measurements["mean_activity"] = estimate.mean_activity()

    if N_STATES ** len(circuit.inputs) <= oracle_budget:
        oracle = facade_estimate(
            circuit, fair, backend="enumeration", cache=None
        )
        worst = 0.0
        for line, dist in oracle.distributions.items():
            delta = float(abs(dist - estimate.distributions[line]).max())
            if delta > worst:
                worst = delta
        measurements["max_abs_error"] = worst

    return measurements


def _assemble_profile(
    measurements: Dict[str, Dict[str, Any]],
    obs: Optional[Dict[str, Any]] = None,
    note: str = "",
) -> Dict[str, Any]:
    if not measurements:
        raise PerfProfileError("no measurements collected")
    profile: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "schema_version": PROFILE_SCHEMA_VERSION,
        "recorded_at": datetime.now(timezone.utc)
        .isoformat(timespec="seconds")
        .replace("+00:00", "Z"),
        "note": note,
        "git": git_revision(),
        "fingerprint": machine_fingerprint(),
        "measurements": measurements,
    }
    if obs is not None:
        profile["obs"] = obs
    return profile


def collect_profile(
    circuits: Optional[Sequence[str]] = None,
    repeats: int = 3,
    batch_sizes: Iterable[int] = (64,),
    parallelism: int = 0,
    kernel: str = "auto",
    oracle_budget: int = DEFAULT_ORACLE_BUDGET,
    note: str = "",
    quick: bool = False,
    progress=None,
) -> Dict[str, Any]:
    """Run the measurement suite and assemble one profile.

    ``quick`` shrinks to the CI configuration (c17 only, 2 repeats,
    K=64) -- wide error bars, but enough for the wide-band CI gate.
    Measurements run under a private *enabled* metrics registry, so the
    profile's ``obs`` block carries the work counters (FLOP estimates,
    ``factor_bytes``, support density, cache hits) that explain the
    timings; the caller's registry is untouched.
    """
    if quick:
        circuits = ["c17"]
        repeats = min(repeats, 2)
        batch_sizes = (64,)
    names = list(circuits) if circuits else list(DEFAULT_CIRCUITS)
    registry = MetricsRegistry(enabled=True)
    previous = set_metrics(registry)
    try:
        cycle_histogram = registry.histogram("perf.repeat_cycle_seconds")
        measurements: Dict[str, Dict[str, Any]] = {}
        for name in names:
            measurements[name] = measure_circuit(
                name,
                repeats=repeats,
                batch_sizes=batch_sizes,
                parallelism=parallelism,
                kernel=kernel,
                oracle_budget=oracle_budget,
            )
            for seconds in measurements[name]["repeat_estimate_seconds_samples"]:
                cycle_histogram.observe(seconds)
            if progress is not None:
                progress(name, measurements[name])
    finally:
        set_metrics(previous)
    return _assemble_profile(measurements, obs=registry.snapshot(), note=note)


#: bench-report row fields copied verbatim into a measurement block.
_PROPAGATION_ROW_FIELDS = (
    "gates",
    "method",
    "kernel",
    "compile_seconds",
    "first_estimate_seconds",
    "repeat_estimate_seconds",
    "repeat_estimate_min_seconds",
    "support_density",
    "sparse_cliques",
    "mean_activity",
    "max_abs_diff_vs_dense",
    "sparse_speedup",
)

#: segmentation-report row fields copied into a measurement block; the
#: names deliberately reuse the propagation vocabulary so the existing
#: gate rules (min-time band, mean-activity drift, max_abs_error
#: growth) apply without new metric plumbing.
_SEGMENTATION_ROW_FIELDS = (
    "gates",
    "segments",
    "glue_edges",
    "compile_seconds",
    "repeat_estimate_min_seconds",
    "mean_activity",
    "max_abs_error",
    "refine_iterations",
    "refine_delta",
)


def ingest_bench_documents(
    propagation: Optional[Dict[str, Any]] = None,
    throughput: Optional[Dict[str, Any]] = None,
    segmentation: Optional[Dict[str, Any]] = None,
    serving: Optional[Dict[str, Any]] = None,
    note: str = "",
) -> Dict[str, Any]:
    """Build a profile from already-emitted benchmark reports.

    This is the ``repro perf record --from-propagation/--from-throughput``
    path and the benchmark runners' ``--store`` mode: the numbers were
    just measured by the runner, so they are harvested instead of
    re-measured.
    """
    measurements: Dict[str, Dict[str, Any]] = {}
    if propagation is not None:
        if propagation.get("benchmark") != "propagation":
            raise PerfProfileError(
                f"expected a propagation report, got "
                f"{propagation.get('benchmark')!r}"
            )
        for row in propagation.get("results", []):
            block = measurements.setdefault(row["circuit"], {})
            for field in _PROPAGATION_ROW_FIELDS:
                if field in row:
                    block[field] = row[field]
    if throughput is not None:
        if throughput.get("benchmark") != "throughput":
            raise PerfProfileError(
                f"expected a throughput report, got "
                f"{throughput.get('benchmark')!r}"
            )
        for row in throughput.get("results", []):
            block = measurements.setdefault(row["circuit"], {})
            rates = block.setdefault("batched_scenarios_per_sec", {})
            # Delta-sweep rows share the batched rows' metric but carry
            # a "sweep" tag; suffix the key so both gate independently.
            rate_key = str(row["batch_size"])
            if row.get("sweep"):
                rate_key = f"{rate_key}[{row['sweep']}]"
            rates[rate_key] = row["batched_scenarios_per_sec"]
    if segmentation is not None:
        if segmentation.get("benchmark") != "segmentation":
            raise PerfProfileError(
                f"expected a segmentation report, got "
                f"{segmentation.get('benchmark')!r}"
            )
        # One block per (circuit, refine) point: each refine level has
        # its own timing/accuracy trajectory to gate.
        for row in segmentation.get("results", []):
            key = f"{row['circuit']}[refine={row['refine']}]"
            block = measurements.setdefault(key, {})
            for field in _SEGMENTATION_ROW_FIELDS:
                if field in row and row[field] is not None:
                    block[field] = row[field]
    if serving is not None:
        if serving.get("benchmark") != "serving":
            raise PerfProfileError(
                f"expected a serving report, got "
                f"{serving.get('benchmark')!r}"
            )
        # Mirrors the throughput shape: a rate dict per circuit, keyed
        # by the serving configuration so batched and unbatched rates
        # at each concurrency gate independently.
        for row in serving.get("results", []):
            block = measurements.setdefault(row["circuit"], {})
            rates = block.setdefault("serving_scenarios_per_sec", {})
            rate_key = f"{row['mode']}@c{row['concurrency']}"
            # Skewed-stream rows (the cached-serving benchmark) carry a
            # workload tag and, when the server reported it, the result
            # cache's hit rate for the run.
            if row.get("workload"):
                rate_key = f"{rate_key}[{row['workload']}]"
            rates[rate_key] = row["scenarios_per_sec"]
            if row.get("cache_hit_rate") is not None:
                hit_rates = block.setdefault("serving_cache_hit_rate", {})
                hit_rates[rate_key] = row["cache_hit_rate"]
    if not measurements:
        raise PerfProfileError(
            "nothing to ingest: no benchmark rows in the given report(s)"
        )
    return _assemble_profile(measurements, note=note)
