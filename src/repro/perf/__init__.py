"""Performance history: versioned profiles, trajectory, regression gate.

The observability layer (:mod:`repro.obs`) answers *where did this run
spend its time*; this package answers *how has that changed across
versions*.  Profiles -- git SHA + machine fingerprint + per-circuit
measurements + the obs metrics snapshot -- append to a store
(``.repro-perf/profiles.jsonl``), render as a trajectory
(``repro perf log``), and gate CI through a statistical diff
(``repro perf diff``, exit 1 on perf regression / 2 on accuracy
drift).

- :mod:`repro.perf.fingerprint` -- the machine identity timings are
  only comparable within,
- :mod:`repro.perf.store`       -- the ``repro.perf/v1`` schema and the
  append-only store + committed ``PERF_HISTORY.json`` baseline,
- :mod:`repro.perf.collect`     -- run the measurement suite or ingest
  ``BENCH_*.json`` reports,
- :mod:`repro.perf.diff`        -- noise-band/floor/accuracy gate (also
  the engine behind ``benchmarks/bench_diff.py``),
- :mod:`repro.perf.render`      -- trajectory tables and diff lines.
"""

from __future__ import annotations

from repro.errors import PerfDiffError, PerfProfileError
from repro.perf.collect import (
    DEFAULT_CIRCUITS,
    collect_profile,
    git_revision,
    ingest_bench_documents,
    measure_circuit,
)
from repro.perf.diff import (
    compare_bench_documents,
    compare_profiles,
    exit_code,
)
from repro.perf.fingerprint import (
    fingerprint_digest,
    fingerprints_compatible,
    machine_fingerprint,
)
from repro.perf.render import render_diff, render_log, version_label
from repro.perf.store import (
    BASELINE_FILE,
    DEFAULT_STORE_DIR,
    PROFILE_SCHEMA,
    PROFILE_SCHEMA_VERSION,
    PerfStore,
    load_profiles_file,
    validate_profile,
    write_history,
)

__all__ = [
    "BASELINE_FILE",
    "DEFAULT_CIRCUITS",
    "DEFAULT_STORE_DIR",
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "PerfDiffError",
    "PerfProfileError",
    "PerfStore",
    "collect_profile",
    "compare_bench_documents",
    "compare_profiles",
    "exit_code",
    "fingerprint_digest",
    "fingerprints_compatible",
    "git_revision",
    "ingest_bench_documents",
    "load_profiles_file",
    "machine_fingerprint",
    "measure_circuit",
    "render_diff",
    "render_log",
    "validate_profile",
    "version_label",
    "write_history",
]
