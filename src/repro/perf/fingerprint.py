"""Machine fingerprint: the hardware/software context of a perf profile.

A timing measured on one machine says nothing about another -- a
different CPU, a different BLAS, or a different numpy all move the
numbers more than most real regressions.  Every recorded profile
therefore carries a fingerprint of the environment it ran on, and the
diff engine refuses to compare profiles whose fingerprints differ
unless the caller explicitly forces it (``repro perf diff --force``).

The fingerprint is a flat dict of human-readable fields plus a
``digest`` over the fields that actually shape performance:

- ``cpu_model``  -- CPU model string (``/proc/cpuinfo`` on Linux),
- ``cpu_count``  -- logical CPUs (threaded segment pipelines and BLAS
  both scale with it),
- ``blas``       -- the BLAS/LAPACK libraries numpy was built against,
- ``numpy`` / ``python`` -- versions (kernel dispatch changes between
  releases),
- ``machine``    -- the ISA (``x86_64``, ``arm64``, ...).

``hostname_hash`` is recorded for provenance (which box was this?)
but deliberately excluded from the digest: two identical containers on
different hosts are comparable, and the raw hostname never leaves the
machine un-hashed.
"""

from __future__ import annotations

import hashlib
import os
import platform
import socket
import sys
from typing import Any, Dict

__all__ = [
    "fingerprint_digest",
    "fingerprints_compatible",
    "machine_fingerprint",
]

#: fields folded into the digest, in order (hostname_hash is provenance
#: only -- identical hardware on two hosts must stay comparable).
_DIGEST_FIELDS = ("cpu_model", "cpu_count", "blas", "numpy", "python", "machine")


def _cpu_model() -> str:
    """CPU model string; best effort across platforms."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _blas_backend() -> str:
    """The BLAS numpy links against, normalized to a short tag.

    numpy >= 1.26 exposes ``show_config(mode="dicts")``; older builds
    only have ``get_info``.  Either way the answer is reduced to the
    library *names* -- paths vary per install and would fracture
    otherwise-identical fingerprints.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return "none"
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "")
        if name:
            return str(name)
    except (TypeError, AttributeError, KeyError):
        pass
    try:
        info = np.__config__.get_info("blas_opt_info")  # type: ignore[attr-defined]
        libs = info.get("libraries")
        if libs:
            return ",".join(sorted(str(lib) for lib in libs))
    except (AttributeError, KeyError):
        pass
    return "unknown"


def _numpy_version() -> str:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return "none"
    return np.__version__


def fingerprint_digest(fingerprint: Dict[str, Any]) -> str:
    """Digest over the performance-shaping fields of a fingerprint."""
    material = "\n".join(
        f"{field}={fingerprint.get(field)}" for field in _DIGEST_FIELDS
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def machine_fingerprint() -> Dict[str, Any]:
    """Fingerprint the current process's machine (live, not cached).

    Reads the environment on every call so tests can monkeypatch
    ``os.cpu_count`` and observe the digest change -- exactly the
    cross-machine mismatch the diff engine guards against.
    """
    fingerprint: Dict[str, Any] = {
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count() or 1,
        "blas": _blas_backend(),
        "numpy": _numpy_version(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "hostname_hash": hashlib.sha256(
            socket.gethostname().encode()
        ).hexdigest()[:12],
    }
    fingerprint["digest"] = fingerprint_digest(fingerprint)
    return fingerprint


def fingerprints_compatible(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Whether two profiles' timings are comparable (same digest)."""
    return bool(a.get("digest")) and a.get("digest") == b.get("digest")


if __name__ == "__main__":  # pragma: no cover - debugging aid
    import json

    json.dump(machine_fingerprint(), sys.stdout, indent=2)
    print()
