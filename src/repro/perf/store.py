"""Append-only, schema-versioned store of performance profiles.

The store is a directory (``.repro-perf/`` by default, overridable via
``$REPRO_PERF_DIR``) holding one JSON-lines file, ``profiles.jsonl``:
one profile per line, append-only, newest last.  Append-only is the
point -- the perf trajectory of the repository is a *history*, and
``repro perf log`` renders it directly from this file.  A committed
baseline (:data:`BASELINE_FILE`, ``PERF_HISTORY.json``) carries the
same profiles wrapped in a ``{"profiles": [...]}`` document so CI can
diff a fresh recording against the last agreed-on numbers.

Profile shape (``repro.perf/v1``)::

    {
      "schema": "repro.perf/v1",
      "schema_version": 1,
      "recorded_at": "2026-08-08T12:00:00Z",   # ISO-8601 UTC
      "note": "",                              # free-form provenance
      "git": {"sha": str, "short": str, "dirty": bool},
      "fingerprint": {..., "digest": str},     # see perf.fingerprint
      "obs": {"counters": ..., "gauges": ..., "histograms": ...},
      "measurements": {
        "<circuit>": {
          "repeat_estimate_min_seconds": float,        # primary (time)
          "repeat_estimate_seconds_samples": [float],  # raw cycles
          "batched_scenarios_per_sec": {"64": float},  # primary (rate)
          "max_abs_error": float,        # vs enumeration oracle
          "max_abs_diff_vs_dense": float,
          "mean_activity": float,        # accuracy-gated
          ...                            # context (compile_seconds, ...)
        },
      },
    }

Corruption policy (mirrors the compile cache's corrupt-entry
eviction): a truncated or garbage line -- a byte-chopped file after a
crash mid-append -- is *skipped* with a :class:`UserWarning` and a
``perf.store.corrupt`` obs counter increment, never a crash.  The
profiles before the damage stay readable, which is all an append-only
log can promise.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import PerfProfileError
from repro.obs.metrics import get_metrics

__all__ = [
    "BASELINE_FILE",
    "DEFAULT_STORE_DIR",
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "PerfStore",
    "load_profiles_file",
    "validate_profile",
    "write_history",
]

PROFILE_SCHEMA = "repro.perf/v1"
PROFILE_SCHEMA_VERSION = 1

#: Environment variable overriding the default store directory.
STORE_DIR_ENV = "REPRO_PERF_DIR"

#: Default store directory, relative to the working directory (the
#: store is per-checkout state, like ``.git``, not per-user state).
DEFAULT_STORE_DIR = ".repro-perf"

#: The committed baseline document diffed against in CI.
BASELINE_FILE = "PERF_HISTORY.json"


def _fail(message: str) -> None:
    raise PerfProfileError(f"invalid perf profile: {message}")


def validate_profile(profile: Any) -> Dict[str, Any]:
    """Validate a profile against the ``repro.perf/v1`` schema.

    Raises :class:`~repro.errors.PerfProfileError` on drift; returns
    the profile unchanged on success so calls can be inlined.
    """
    if not isinstance(profile, dict):
        _fail("top level is not an object")
    if profile.get("schema") != PROFILE_SCHEMA:
        _fail(
            f"schema is {profile.get('schema')!r}, expected {PROFILE_SCHEMA!r}"
        )
    if profile.get("schema_version") != PROFILE_SCHEMA_VERSION:
        _fail(
            f"schema_version is {profile.get('schema_version')!r}, "
            f"expected {PROFILE_SCHEMA_VERSION}"
        )
    git = profile.get("git")
    if not isinstance(git, dict) or not isinstance(git.get("sha"), str):
        _fail("git.sha is missing or not a string")
    if not isinstance(git.get("dirty"), bool):
        _fail("git.dirty is missing or not a bool")
    fingerprint = profile.get("fingerprint")
    if not isinstance(fingerprint, dict) or not isinstance(
        fingerprint.get("digest"), str
    ):
        _fail("fingerprint.digest is missing or not a string")
    measurements = profile.get("measurements")
    if not isinstance(measurements, dict) or not measurements:
        _fail("measurements is missing or empty")
    for circuit, metrics in measurements.items():
        if not isinstance(circuit, str):
            _fail("measurements has a non-string circuit key")
        if not isinstance(metrics, dict):
            _fail(f"measurements[{circuit!r}] is not an object")
        for name, value in metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                continue
            if isinstance(value, str):
                continue
            if isinstance(value, dict) and all(
                isinstance(v, (int, float)) for v in value.values()
            ):
                continue
            if isinstance(value, list) and all(
                isinstance(v, (int, float)) for v in value
            ):
                continue
            _fail(
                f"measurements[{circuit!r}][{name!r}] is neither a number, "
                f"a string, a numeric list, nor a flat numeric object"
            )
    if "obs" in profile and not isinstance(profile["obs"], dict):
        _fail("obs is present but not an object")
    return profile


def _count_corrupt(detail: str) -> None:
    """A damaged entry: warn, count, move on (never crash)."""
    warnings.warn(
        f"perf store: skipping corrupt profile entry ({detail})",
        UserWarning,
        stacklevel=3,
    )
    registry = get_metrics()
    if registry.enabled:
        registry.counter("perf.store.corrupt").inc(1)


def default_store_dir() -> Path:
    """``$REPRO_PERF_DIR``, else ``.repro-perf`` in the working dir."""
    override = os.environ.get(STORE_DIR_ENV)
    if override:
        return Path(override)
    return Path(DEFAULT_STORE_DIR)


class PerfStore:
    """Append-only profile log under a store directory.

    Parameters
    ----------
    root:
        Store directory (created on first append).  Defaults to
        :func:`default_store_dir`.
    """

    FILENAME = "profiles.jsonl"

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_store_dir()

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------

    def append(self, profile: Dict[str, Any]) -> Path:
        """Validate and append one profile (one compact JSON line)."""
        validate_profile(profile)
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(profile, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
        return self.path

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def profiles(
        self, fingerprint_digest: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Every readable profile, oldest first.

        Corrupt lines (truncated tail after a crash, garbage bytes) are
        skipped with a warning and a ``perf.store.corrupt`` counter
        increment.  ``fingerprint_digest`` filters to one machine.
        """
        if not self.path.is_file():
            return []
        found: List[Dict[str, Any]] = []
        with open(self.path, errors="replace") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    profile = validate_profile(json.loads(line))
                except (json.JSONDecodeError, PerfProfileError) as exc:
                    _count_corrupt(f"{self.path}:{lineno}: {exc}")
                    continue
                if (
                    fingerprint_digest is not None
                    and profile["fingerprint"].get("digest")
                    != fingerprint_digest
                ):
                    continue
                found.append(profile)
        return found

    def resolve(self, ref: str) -> Dict[str, Any]:
        """Resolve a profile reference to one profile.

        ``ref`` is, in precedence order:

        - a path to a profile JSON, a ``{"profiles": [...]}`` history
          document (``PERF_HISTORY.json``), or a ``.jsonl`` log -- the
          *last* profile in the file wins,
        - ``"latest"`` -- the newest profile in this store,
        - a git SHA prefix -- the newest stored profile whose
          ``git.sha`` starts with it.
        """
        path = Path(ref)
        if path.is_file():
            profiles = load_profiles_file(path)
            if not profiles:
                raise PerfProfileError(f"{ref}: no readable profiles")
            return profiles[-1]
        profiles = self.profiles()
        if ref == "latest":
            if not profiles:
                raise PerfProfileError(
                    f"perf store {self.path} has no profiles; "
                    f"run `repro perf record` first"
                )
            return profiles[-1]
        matches = [p for p in profiles if p["git"]["sha"].startswith(ref)]
        if not matches:
            raise PerfProfileError(
                f"no stored profile matches ref {ref!r} "
                f"(store: {self.path}, {len(profiles)} profile(s))"
            )
        return matches[-1]


def load_profiles_file(path: os.PathLike) -> List[Dict[str, Any]]:
    """Read profiles from a file of any supported shape, oldest first.

    Accepts a single-profile JSON document, a ``{"profiles": [...]}``
    history document, a bare JSON list, or a ``.jsonl`` append log.
    Corrupt entries are skipped with a warning (never a crash).
    """
    path = Path(path)
    try:
        text = path.read_text(errors="replace")
    except OSError as exc:
        raise PerfProfileError(f"cannot read {path}: {exc}") from exc
    candidates: List[Any]
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        # JSON-lines (or a damaged document): recover line by line.
        candidates = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                candidates.append(json.loads(line))
            except json.JSONDecodeError as exc:
                _count_corrupt(f"{path}:{lineno}: {exc}")
    else:
        if isinstance(document, dict) and "profiles" in document:
            candidates = document["profiles"]
            if not isinstance(candidates, list):
                raise PerfProfileError(f"{path}: 'profiles' is not a list")
        elif isinstance(document, list):
            candidates = document
        else:
            candidates = [document]
    found: List[Dict[str, Any]] = []
    for i, candidate in enumerate(candidates):
        try:
            found.append(validate_profile(candidate))
        except PerfProfileError as exc:
            _count_corrupt(f"{path}[{i}]: {exc}")
    return found


def write_history(path: os.PathLike, profiles: List[Dict[str, Any]]) -> Path:
    """Write the committed-baseline history document."""
    path = Path(path)
    for profile in profiles:
        validate_profile(profile)
    document = {
        "schema": PROFILE_SCHEMA,
        "schema_version": PROFILE_SCHEMA_VERSION,
        "profiles": profiles,
    }
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
