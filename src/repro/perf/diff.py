"""Statistical comparison of two perf profiles (the regression gate).

Exit-code contract (the CLI and CI both rely on it):

- ``0`` -- no significant change,
- ``1`` -- at least one *performance* metric regressed beyond the
  noise band,
- ``2`` -- an *accuracy* metric drifted, or the inputs are not
  comparable at all (different machines without ``force``, no common
  rows, mismatched benchmark kinds).

Accuracy outranks speed: a kernel that got fast by getting wrong is a
worse failure than a slowdown, so any accuracy drift wins the exit
code even when every timing improved.

Noise-band statistics
---------------------

The primary time statistic is the **min over repeats** (see
:mod:`repro.perf.collect`): timing noise on a shared machine is
additive, so the minimum converges on the true cost from above.  A
regression must still clear a noise band before it counts:

``new_min > old_min * (1 + band_eff)``

where ``band_eff`` is the configured ``--noise-band`` *widened by the
observed run-internal dispersion* of whichever side recorded raw
samples: ``(median - min) / min`` says how noisy that run actually
was, and a gate should never flag a delta smaller than the noise the
recording itself exhibited.  Rate metrics (scenarios/sec) use the
symmetric rule ``new < old * (1 - band)``.  Timing rows where both
sides sit below ``--floor-seconds`` are skipped outright: sub-ms
timings on a shared runner are timer noise, not signal.

:func:`compare_bench_documents` applies the same band/floor rules to
raw ``BENCH_propagation.json`` / ``BENCH_throughput.json`` reports --
it is the engine behind ``benchmarks/bench_diff.py``, which keeps its
historical CLI contract as a thin wrapper.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import PerfDiffError
from repro.perf.fingerprint import fingerprints_compatible
from repro.perf.store import validate_profile

__all__ = [
    "PerfDiffError",
    "compare_bench_documents",
    "compare_profiles",
    "exit_code",
]

#: per-circuit scalar timings gated lower-is-better (floor applies).
_TIME_METRICS = ("repeat_estimate_min_seconds",)

#: per-circuit ``{batch_size: rate}`` tables gated higher-is-better.
#: serving rates and cache hit rates share the dict shape (keyed by
#: serving configuration), so they gate through the same loop.
_RATE_METRICS = (
    "batched_scenarios_per_sec",
    "serving_scenarios_per_sec",
    "serving_cache_hit_rate",
)

#: error metrics: growth beyond atol is an accuracy failure (exit 2).
_ERROR_METRICS = ("max_abs_error", "max_abs_diff_vs_dense")

#: value metrics: *any* drift beyond atol is an accuracy failure --
#: the estimate itself changed between versions.
_VALUE_METRICS = ("mean_activity",)


def _ratio(old: float, new: float) -> float:
    return new / old if old else float("inf")


def _dispersion(samples: Optional[Sequence[float]]) -> float:
    """Run-internal relative noise: ``(median - min) / min``.

    Zero when samples are absent or degenerate -- the band then stays
    at its configured width.
    """
    if not samples or len(samples) < 2:
        return 0.0
    low = min(samples)
    if low <= 0:
        return 0.0
    return max(0.0, (statistics.median(samples) - low) / low)


def _record(
    key: str,
    metric: str,
    old: float,
    new: float,
    status: str,
    band: float,
) -> Dict[str, Any]:
    return {
        "key": key,
        "metric": metric,
        "old": old,
        "new": new,
        "ratio": _ratio(old, new),
        "status": status,
        "band": band,
    }


def compare_profiles(
    old: Dict[str, Any],
    new: Dict[str, Any],
    noise_band: float = 0.25,
    floor_seconds: float = 0.001,
    accuracy_atol: float = 1e-6,
    force: bool = False,
) -> List[Dict[str, Any]]:
    """Row-by-row comparison of two ``repro.perf/v1`` profiles.

    Returns one record per compared metric (``status`` in ``"ok"`` /
    ``"regression"`` / ``"accuracy"`` / ``"skipped"`` / ``"missing"``);
    circuits present in ``old`` but absent from ``new`` become
    ``"missing"`` records (a quick-mode recording covers fewer circuits
    than a full baseline -- that narrows the gate, it does not fail
    it).  Raises :class:`~repro.errors.PerfDiffError` when the two
    profiles are not comparable at all.
    """
    validate_profile(old)
    validate_profile(new)
    if not force and not fingerprints_compatible(
        old["fingerprint"], new["fingerprint"]
    ):
        raise PerfDiffError(
            f"machine fingerprints differ "
            f"(old {old['fingerprint'].get('digest')!r} on "
            f"{old['fingerprint'].get('cpu_model')!r} x"
            f"{old['fingerprint'].get('cpu_count')}, "
            f"new {new['fingerprint'].get('digest')!r} on "
            f"{new['fingerprint'].get('cpu_model')!r} x"
            f"{new['fingerprint'].get('cpu_count')}); "
            f"cross-machine timings are not comparable -- pass force=True "
            f"(CLI: --force) to override"
        )
    records: List[Dict[str, Any]] = []
    compared = 0
    for circuit, old_block in sorted(old["measurements"].items()):
        new_block = new["measurements"].get(circuit)
        if new_block is None:
            records.append(
                _record(circuit, "*", float("nan"), float("nan"), "missing", 0.0)
            )
            continue

        for metric in _TIME_METRICS:
            if metric not in old_block or metric not in new_block:
                continue
            compared += 1
            old_val = float(old_block[metric])
            new_val = float(new_block[metric])
            if old_val < floor_seconds and new_val < floor_seconds:
                records.append(
                    _record(circuit, metric, old_val, new_val, "skipped", 0.0)
                )
                continue
            samples_key = "repeat_estimate_seconds_samples"
            band_eff = noise_band + max(
                _dispersion(old_block.get(samples_key)),
                _dispersion(new_block.get(samples_key)),
            )
            status = (
                "regression" if new_val > old_val * (1.0 + band_eff) else "ok"
            )
            records.append(
                _record(circuit, metric, old_val, new_val, status, band_eff)
            )

        for metric in _RATE_METRICS:
            old_rates = old_block.get(metric)
            new_rates = new_block.get(metric)
            if not isinstance(old_rates, dict) or not isinstance(
                new_rates, dict
            ):
                continue
            for batch, old_rate in sorted(old_rates.items()):
                if batch not in new_rates:
                    continue
                compared += 1
                old_val = float(old_rate)
                new_val = float(new_rates[batch])
                status = (
                    "regression"
                    if new_val < old_val * (1.0 - noise_band)
                    else "ok"
                )
                records.append(
                    _record(
                        f"{circuit}[K={batch}]",
                        metric,
                        old_val,
                        new_val,
                        status,
                        noise_band,
                    )
                )

        for metric in _ERROR_METRICS:
            if metric not in old_block or metric not in new_block:
                continue
            compared += 1
            old_val = float(old_block[metric])
            new_val = float(new_block[metric])
            status = "accuracy" if new_val > old_val + accuracy_atol else "ok"
            records.append(
                _record(circuit, metric, old_val, new_val, status, accuracy_atol)
            )

        for metric in _VALUE_METRICS:
            if metric not in old_block or metric not in new_block:
                continue
            compared += 1
            old_val = float(old_block[metric])
            new_val = float(new_block[metric])
            status = "accuracy" if abs(new_val - old_val) > accuracy_atol else "ok"
            records.append(
                _record(circuit, metric, old_val, new_val, status, accuracy_atol)
            )

    if compared == 0:
        raise PerfDiffError(
            "no comparable measurements between the two profiles "
            f"(old circuits: {sorted(old['measurements'])}, "
            f"new circuits: {sorted(new['measurements'])})"
        )
    return records


def exit_code(records: List[Dict[str, Any]]) -> int:
    """Map diff records to the 0/1/2 exit-code contract."""
    if any(r["status"] == "accuracy" for r in records):
        return 2
    if any(r["status"] == "regression" for r in records):
        return 1
    return 0


# ----------------------------------------------------------------------
# Raw benchmark-report comparison (the bench_diff.py engine)
# ----------------------------------------------------------------------

#: metric name, row-key fields, and direction per benchmark kind;
#: ``higher_is_better`` flips the regression inequality.
_BENCH_KINDS: Dict[str, Dict[str, Any]] = {
    "propagation": {
        "metric": "repeat_estimate_min_seconds",
        "key_fields": ("circuit",),
        "higher_is_better": False,
    },
    "throughput": {
        # "sweep" is optional in rows: only delta-sweep rows carry it,
        # so (via _row_key's .get -> None) legacy batched rows keep the
        # key identity they had before the field existed.
        "metric": "batched_scenarios_per_sec",
        "key_fields": ("circuit", "batch_size", "sweep"),
        "higher_is_better": True,
    },
    "segmentation": {
        "metric": "repeat_estimate_min_seconds",
        "key_fields": ("circuit", "refine"),
        "higher_is_better": False,
    },
    "serving": {
        # "workload" is likewise optional: only skewed-stream rows
        # (zipf/hotspot/burst) tag it, uniform rows stay unkeyed.
        "metric": "scenarios_per_sec",
        "key_fields": ("circuit", "mode", "concurrency", "workload"),
        "higher_is_better": True,
    },
}


def _row_key(row: Dict, key_fields: Tuple[str, ...]) -> Tuple:
    # Absent optional fields ("sweep", "workload") are dropped rather
    # than kept as None, so rows from reports that predate a field keep
    # the exact key tuple they had when their baseline was recorded.
    return tuple(
        row[field] for field in key_fields if row.get(field) is not None
    )


def compare_bench_documents(
    old_doc: Dict,
    new_doc: Dict,
    noise_band: float = 0.25,
    floor_seconds: float = 0.001,
    allow_missing: bool = False,
) -> List[Dict[str, Any]]:
    """Compare two raw benchmark reports row by row.

    This preserves the PR 6 ``bench_diff.py`` contract exactly: record
    keys are tuples of the kind's key fields, rows present in the old
    report but missing from the new raise (a regenerated report must
    cover the committed baseline), and unknown/mismatched benchmark
    kinds raise.  All failures are :class:`~repro.errors.PerfDiffError`
    (exit code 2 at the CLI).

    ``allow_missing=True`` relaxes only the coverage rule: baseline
    rows absent from the new report become ``"missing"`` records
    instead of an error (the profile gate's quick-mode idiom) -- for
    gating a CI-sized regeneration against a fuller committed
    baseline.  At least one row must still be comparable.
    """
    old_kind = old_doc.get("benchmark")
    new_kind = new_doc.get("benchmark")
    if old_kind != new_kind:
        raise PerfDiffError(
            f"benchmark kinds differ: old is {old_kind!r}, new is {new_kind!r}"
        )
    spec = _BENCH_KINDS.get(old_kind)
    if spec is None:
        raise PerfDiffError(f"unknown benchmark kind {old_kind!r}")
    metric = spec["metric"]
    key_fields = spec["key_fields"]
    higher_is_better = spec["higher_is_better"]

    new_rows = {
        _row_key(row, key_fields): row for row in new_doc.get("results", [])
    }
    records: List[Dict[str, Any]] = []
    missing: List[Tuple] = []
    for row in old_doc.get("results", []):
        key = _row_key(row, key_fields)
        if metric not in row:
            continue  # old row predates the metric; nothing to compare
        other = new_rows.get(key)
        if other is None or metric not in other:
            missing.append(key)
            continue
        old_val = float(row[metric])
        new_val = float(other[metric])
        record = {
            "key": key,
            "metric": metric,
            "old": old_val,
            "new": new_val,
            "ratio": _ratio(old_val, new_val),
            "band": noise_band,
        }
        if (
            not higher_is_better
            and old_val < floor_seconds
            and new_val < floor_seconds
        ):
            record["status"] = "skipped"
        elif higher_is_better:
            record["status"] = (
                "regression" if new_val < old_val * (1.0 - noise_band) else "ok"
            )
        else:
            record["status"] = (
                "regression" if new_val > old_val * (1.0 + noise_band) else "ok"
            )
        records.append(record)
    if missing:
        if not allow_missing:
            raise PerfDiffError(
                f"rows present in the old report are missing from the new "
                f"one: {missing}"
            )
        for key in missing:
            records.append(
                {
                    "key": key,
                    "metric": metric,
                    "old": float("nan"),
                    "new": float("nan"),
                    "ratio": float("nan"),
                    "band": noise_band,
                    "status": "missing",
                }
            )
    if not any(r["status"] != "missing" for r in records):
        raise PerfDiffError("no comparable rows between the two reports")
    return records
