"""Figures 1-4: the five-gate walkthrough of Sections 4 and 5.

The paper's figures are structural: the example circuit (Fig. 1), its
LIDAG-structured Bayesian network (Fig. 2), the moralized + triangulated
undirected graph (Fig. 3, with the X1--X2 marriage and the X4--X7
fill-in highlighted), and the junction tree of cliques with separators
(Fig. 4).  :func:`figure_walkthrough` regenerates all four as data; the
example script renders them as text.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bayesian.junction import JunctionTree
from repro.bayesian.moral import moral_graph_with_fill_report
from repro.circuits.examples import paper_circuit
from repro.core.lidag import build_lidag


def figure_walkthrough() -> Dict[str, object]:
    """Reproduce Figures 1-4 as structured data.

    Returns a dict with keys ``circuit``, ``lidag_edges`` (Fig. 2),
    ``moral_edges`` / ``marriages`` / ``fill_ins`` (Fig. 3), and
    ``cliques`` / ``separators`` (Fig. 4), plus the Eq. 7 factorization
    string.
    """
    circuit = paper_circuit()
    bn = build_lidag(circuit)

    moral, marriages = moral_graph_with_fill_report(bn)
    jt = JunctionTree.from_network(bn)

    factor_terms = []
    for node in reversed(bn.topological_order()):
        parents = bn.parents(node)
        if parents:
            factor_terms.append(f"P(x{node}|{','.join('x' + p for p in parents)})")
        else:
            factor_terms.append(f"P(x{node})")
    factorization = " ".join(factor_terms)

    separators: List[tuple] = []
    for u, v in jt.tree.edges:
        separators.append(
            (sorted(jt.cliques[u]), sorted(jt.cliques[v]), sorted(jt.cliques[u] & jt.cliques[v]))
        )

    return {
        "circuit": circuit,
        "lidag_edges": sorted(bn.edges),
        "moral_edges": sorted(tuple(sorted(e)) for e in moral.edges),
        "marriages": sorted(tuple(sorted(e)) for e in marriages),
        "fill_ins": sorted(tuple(sorted(e)) for e in jt.fill_ins),
        "cliques": sorted(sorted(c) for c in jt.cliques),
        "separators": separators,
        "factorization": factorization,
        "junction_tree": jt,
    }
