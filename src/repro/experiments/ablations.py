"""Ablations of the design choices called out in DESIGN.md section 5."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import error_statistics
from repro.baselines.simulation import simulate_switching
from repro.bayesian.junction import JunctionTree
from repro.circuits import suite
from repro.core.inputs import IndependentInputs, TemporalInputs
from repro.core.lidag import build_lidag
from repro.core.segmentation import SegmentedEstimator
from repro.experiments.table1 import make_estimator
from repro.obs.trace import get_tracer


def ablate_triangulation(
    names: Optional[Sequence[str]] = None,
) -> List[Dict[str, float]]:
    """min-fill vs. min-degree: fill-ins, largest clique, compile time."""
    wanted = list(names) if names else ["c17", "alu", "voter", "comp", "pcler8"]
    rows = []
    for name in wanted:
        circuit = suite.load_circuit(name)
        bn = build_lidag(circuit)
        for heuristic in ("min_fill", "min_degree"):
            with get_tracer().span(
                "ablation.triangulation", circuit=name, heuristic=heuristic
            ) as span:
                jt = JunctionTree.from_network(bn, heuristic=heuristic)
            seconds = span.duration
            stats = jt.stats()
            rows.append(
                {
                    "circuit": name,
                    "heuristic": heuristic,
                    "fill_ins": stats["fill_ins"],
                    "max_clique_states": stats["max_clique_states"],
                    "total_entries": stats["total_table_entries"],
                    "compile_s": seconds,
                }
            )
    return rows


def ablate_segmentation(
    name: str = "c880s",
    n_pairs: int = 50_000,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Boundary mode x lookback: accuracy/time of the segmentation knobs."""
    circuit = suite.load_circuit(name)
    sim = simulate_switching(
        circuit, n_pairs=n_pairs, rng=np.random.default_rng(seed)
    )
    rows = []
    configurations = [
        ("independent", 0, "auto"),
        ("independent", 1, "auto"),
        ("independent", 3, "auto"),
        ("tree", 0, "auto"),
        ("tree", 1, "auto"),
        ("tree", 3, "auto"),
        ("tree", 3, "jt"),
        ("tree", 3, "enum"),
    ]
    for boundary, lookback, backend in configurations:
        seg = SegmentedEstimator(
            circuit,
            max_gates_per_segment=60,
            lookback=lookback,
            boundary=boundary,
            backend=backend,
        )
        result = seg.estimate()
        stats = error_statistics(result.activities, sim.activities)
        rows.append(
            {
                "circuit": name,
                "boundary": boundary,
                "lookback": lookback,
                "backend": backend,
                "segments": seg.num_segments,
                "mu_abs_err": stats.mean_abs_error,
                "sigma_err": stats.std_error,
                "pct_err": stats.percent_error_of_means,
                "compile_s": result.compile_seconds,
                "propagate_s": result.propagate_seconds,
            }
        )
    return rows


def ablate_compile_vs_propagate(
    names: Optional[Sequence[str]] = None,
    n_statistics: int = 5,
) -> List[Dict[str, float]]:
    """The paper's advantage #3: re-propagation is tiny versus compile.

    Compile once, then re-estimate under ``n_statistics`` different
    input-probability settings; report compile time versus the mean
    per-propagation time.
    """
    wanted = list(names) if names else ["c17", "alu", "comp", "c432s", "c880s"]
    rows = []
    for name in wanted:
        circuit = suite.load_circuit(name)
        estimator = make_estimator(circuit)
        first = estimator.estimate()
        propagate_times = []
        for k in range(n_statistics):
            p = 0.2 + 0.6 * k / max(n_statistics - 1, 1)
            if hasattr(estimator, "update_inputs"):
                estimator.update_inputs(IndependentInputs(p))
            else:
                estimator.input_model = IndependentInputs(p)
            with get_tracer().span(
                "ablation.repropagate", circuit=name, p_one=p
            ) as span:
                estimator.estimate()
            propagate_times.append(span.duration)
        rows.append(
            {
                "circuit": name,
                "gates": circuit.num_gates,
                "compile_s": first.compile_seconds,
                "mean_propagate_s": float(np.mean(propagate_times)),
                "speedup": first.compile_seconds / max(np.mean(propagate_times), 1e-12),
            }
        )
    return rows


def ablate_input_models(
    name: str = "alu",
    n_pairs: int = 100_000,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Advantage #2: BN accuracy holds across input statistics models."""
    circuit = suite.load_circuit(name)
    models = [
        ("independent p=0.5", IndependentInputs(0.5)),
        ("independent p=0.2", IndependentInputs(0.2)),
        ("temporal a=0.1", TemporalInputs(p_one=0.5, activity=0.1)),
        ("temporal a=0.4", TemporalInputs(p_one=0.5, activity=0.4)),
    ]
    rows = []
    for label, model in models:
        estimator = make_estimator(circuit, model)
        result = estimator.estimate()
        sim = simulate_switching(
            circuit, model, n_pairs=n_pairs, rng=np.random.default_rng(seed)
        )
        stats = error_statistics(result.activities, sim.activities)
        rows.append(
            {
                "circuit": name,
                "input_model": label,
                "mean_activity": result.mean_activity(),
                "sim_mean_activity": sim.mean_activity(),
                "mu_abs_err": stats.mean_abs_error,
                "sigma_err": stats.std_error,
            }
        )
    return rows
