"""Table 1: accuracy and timing of BN estimation on the benchmark suite.

For each circuit, the experiment

1. simulates ``n_pairs`` random vector pairs for the ground truth,
2. compiles the circuit into one or more junction trees (Bayesian
   network compilation; timed as *compile*),
3. propagates the input statistics and reads all line marginals (timed
   as *update* -- the paper's column 6, which it emphasizes is tiny and
   size-independent relative to compilation),
4. reports the paper's error columns: mean error (signed), mean
   absolute error, standard deviation of the error, and the percent
   error between mean activities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import error_statistics
from repro.baselines.simulation import simulate_switching
from repro.circuits import suite
from repro.circuits.netlist import Circuit
from repro.core.backend import compile_model
from repro.core.inputs import IndependentInputs, InputModel
from repro.obs.trace import get_tracer


def make_estimator(
    circuit: Circuit,
    input_model: Optional[InputModel] = None,
    max_gates_per_segment: int = 60,
    lookback: int = 3,
    max_clique_states: Optional[int] = None,
    boundary: str = "tree",
):
    """Single-BN estimator for small circuits, segmented otherwise.

    Thin wrapper over the ``"auto"`` backend
    (:class:`repro.core.backend.backends.AutoBackend`), kept for
    callers that want the raw estimator object rather than the
    :class:`~repro.core.backend.base.CompiledModel` artifact.
    """
    return compile_model(
        circuit,
        input_model,
        backend="auto",
        max_gates_per_segment=max_gates_per_segment,
        lookback=lookback,
        max_clique_states=max_clique_states,
        boundary=boundary,
    ).estimator


def table1_row(
    name: str,
    circuit: Circuit,
    n_pairs: int = 100_000,
    seed: int = 0,
    input_model: Optional[InputModel] = None,
    **estimator_kwargs,
) -> Dict[str, float]:
    """One Table 1 row: error statistics and the compile/update split."""
    model = input_model if input_model is not None else IndependentInputs(0.5)
    compiled = compile_model(circuit, model, backend="auto", **estimator_kwargs)
    result = compiled.query()

    # Re-propagation with fresh statistics measures the paper's "update"
    # time: everything after compilation.
    with get_tracer().span("table1.update", circuit=name) as span:
        repeat = compiled.query()
    update_seconds = span.duration

    sim = simulate_switching(
        circuit, model, n_pairs=n_pairs, rng=np.random.default_rng(seed)
    )
    stats = error_statistics(repeat.activities, sim.activities)
    signed = np.array(
        [repeat.switching(l) - sim.switching(l) for l in circuit.lines]
    )
    return {
        "circuit": name,
        "gates": circuit.num_gates,
        "inputs": circuit.num_inputs,
        "segments": repeat.segments,
        "mu_err": float(signed.mean()),
        "mu_abs_err": stats.mean_abs_error,
        "sigma_err": stats.std_error,
        "pct_err": stats.percent_error_of_means,
        "total_s": result.compile_seconds + result.propagate_seconds,
        "update_s": update_seconds,
    }


def run_table1(
    names: Optional[Sequence[str]] = None,
    n_pairs: int = 100_000,
    seed: int = 0,
    **estimator_kwargs,
) -> List[Dict[str, float]]:
    """Run Table 1 over the named suite circuits (default: full suite)."""
    circuits = suite.benchmark_suite(list(names) if names else None)
    return [
        table1_row(name, circuit, n_pairs=n_pairs, seed=seed, **estimator_kwargs)
        for name, circuit in circuits.items()
    ]


TABLE1_COLUMNS = [
    "circuit",
    "gates",
    "segments",
    "mu_err",
    "sigma_err",
    "pct_err",
    "total_s",
    "update_s",
]
