"""Table 2: the Bayesian network against approximate dependency models.

The paper compares against Marculescu '94 (pairwise spatio-temporal
correlations), Schneider '96 (approximate higher-order correlations) and
Marculescu '98 (pairwise composition).  We re-implement the published
approximation *classes* (see DESIGN.md section 3):

- ``pairwise``   -- Ercolani/Marculescu-style pairwise correlation
  coefficient propagation (:mod:`repro.baselines.pairwise`),
- ``local-cone`` -- depth-bounded exact local cones, the
  Schneider-style approximate higher-order model
  (:mod:`repro.baselines.local`),
- ``independence`` -- zero-correlation propagation, the error
  reference everything improves on,
- ``bayesian-network`` -- this paper's method.

The claim whose *shape* Table 2 establishes: the exact BN's error is
many times smaller than every approximate model's, at comparable or
better runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import error_statistics
from repro.baselines.simulation import simulate_switching
from repro.circuits import suite
from repro.core.backend import estimate
from repro.core.inputs import IndependentInputs, InputModel
from repro.obs.trace import get_tracer

#: Table 2 circuits: the c-series subset the paper uses.
DEFAULT_TABLE2_CIRCUITS = [
    "c17",
    "c432s",
    "c499s",
    "c880s",
    "c1355s",
    "c1908s",
]


#: (row label, backend name, backend options) per Table 2 method.
TABLE2_METHODS = [
    ("bayesian-network", "auto", {}),
    ("pairwise", "pairwise", {}),
    ("local-cone", "local-cone", {"depth": 3, "max_cut_inputs": 6}),
    ("independence", "independence", {}),
]


def _method_rows(name, circuit, sim_acts, model) -> List[Dict[str, float]]:
    tracer = get_tracer()
    rows = []
    for label, backend, options in TABLE2_METHODS:
        with tracer.span("table2.method", circuit=name, method=label) as sp:
            result = estimate(circuit, model, backend=backend, **options)
        rows.append(_row(name, label, result.activities, sim_acts, sp.duration))
    return rows


def _row(circuit_name, method, activities, sim_acts, seconds):
    stats = error_statistics(activities, sim_acts)
    signed_mean = float(
        np.mean([activities[l] - sim_acts[l] for l in activities])
    )
    return {
        "circuit": circuit_name,
        "method": method,
        "mu_err": signed_mean,
        "mu_abs_err": stats.mean_abs_error,
        "sigma_err": stats.std_error,
        "max_err": stats.max_abs_error,
        "time_s": seconds,
    }


def run_table2(
    names: Optional[Sequence[str]] = None,
    n_pairs: int = 100_000,
    seed: int = 0,
    input_model: Optional[InputModel] = None,
) -> List[Dict[str, float]]:
    """Run the method comparison over the named circuits."""
    wanted = list(names) if names else list(DEFAULT_TABLE2_CIRCUITS)
    model = input_model if input_model is not None else IndependentInputs(0.5)
    rows: List[Dict[str, float]] = []
    for name in wanted:
        circuit = suite.load_circuit(name)
        sim = simulate_switching(
            circuit, model, n_pairs=n_pairs, rng=np.random.default_rng(seed)
        )
        rows.extend(_method_rows(name, circuit, sim.activities, model))
    return rows


TABLE2_COLUMNS = [
    "circuit",
    "method",
    "mu_err",
    "mu_abs_err",
    "sigma_err",
    "max_err",
    "time_s",
]
