"""Reproductions of the paper's tables and figures.

Each experiment is a plain function returning row dictionaries, shared
by the pytest benchmarks under ``benchmarks/`` and the command-line
interface (``python -m repro.cli``).  See EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.experiments.figures import figure_walkthrough
from repro.experiments.table1 import run_table1, table1_row
from repro.experiments.table2 import run_table2

__all__ = ["figure_walkthrough", "run_table1", "run_table2", "table1_row"]
