"""Consolidated exception hierarchy for the whole package.

Every failure the library raises on purpose derives from
:class:`ReproError`, split into four branches that mirror the pipeline
stages:

``ValidationError``
    The *circuit* is malformed (parse errors, cycles, undriven nets,
    duplicate definitions).  Raised by :mod:`repro.circuits.bench`,
    :class:`repro.circuits.netlist.Circuit`, and
    :mod:`repro.core.validate` before any model is built.
``InputModelError``
    The *input statistics* are malformed (missing inputs, non-finite or
    unnormalized marginals, CPDs referencing unknown lines).
``CompileError``
    A backend could not build its compiled artifact within budget
    (clique budget, enumeration width).  The facade's fallback chain is
    driven by this branch.
``PropagationError``
    Inference on a successfully compiled model produced an invalid
    belief state (zero-mass or non-finite marginals).

Each class multiply-inherits the builtin its pre-consolidation
ancestor subclassed (``ValueError``, ``RuntimeError``, ``KeyError``),
so existing ``except`` clauses keep working.  The historical import
locations (``repro.circuits.bench.BenchFormatError``,
``repro.core.backend.errors.CliqueBudgetExceeded``, ...) re-export
these classes; ``repro.core.estimator.CliqueBudgetExceeded`` keeps its
``DeprecationWarning`` alias.

This module is import-light on purpose: it must not import anything
from the package so every layer (circuits, bayesian, core, cli) can
depend on it without cycles.
"""

from __future__ import annotations

__all__ = [
    "ArtifactSchemaError",
    "BenchFormatError",
    "CircuitError",
    "CliqueBudgetExceeded",
    "CombinationalCycleError",
    "CompileError",
    "ConcurrentPropagationError",
    "DuplicateDefinitionError",
    "FallbackExhausted",
    "InputModelError",
    "PerfDiffError",
    "PerfProfileError",
    "PropagationError",
    "ReproError",
    "SegmentBoundaryError",
    "SegmentTooWide",
    "UndefinedLineError",
    "UnknownBackendError",
    "UnknownCircuitError",
    "ValidationError",
    "ZeroBeliefError",
]


class ReproError(Exception):
    """Base class of every deliberate failure raised by this package."""


# ----------------------------------------------------------------------
# Circuit / netlist validation
# ----------------------------------------------------------------------


class ValidationError(ReproError, ValueError):
    """The circuit description is structurally invalid."""


class CircuitError(ValidationError):
    """Raised for structurally invalid netlists (cycles, double drivers...).

    Historical name; the fine-grained subclasses below are preferred for
    new raises.
    """


class DuplicateDefinitionError(CircuitError):
    """A line is defined more than once (two gates, two ``INPUT``
    declarations, or a gate driving a declared primary input)."""


class UndefinedLineError(CircuitError):
    """A gate operand or ``OUTPUT`` declaration references a line that
    is neither a primary input nor any gate's output."""


class CombinationalCycleError(CircuitError):
    """The gate graph contains a combinational cycle."""


class BenchFormatError(ValidationError):
    """Raised when a ``.bench`` file cannot be parsed."""


class SegmentBoundaryError(ValidationError):
    """A segment boundary model is misconfigured: an unknown
    ``boundary=`` mode, a boundary forest with a cycle, or a boundary
    distribution with the wrong shape or mass.  Pre-consolidation these
    were bare ``ValueError``\\ s out of ``repro.core.segmentation``; the
    message texts are preserved."""


class UnknownCircuitError(ReproError, KeyError):
    """No circuit of the requested name exists in the benchmark suite."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable.
        return str(self.args[0]) if self.args else ""


# ----------------------------------------------------------------------
# Input statistics validation
# ----------------------------------------------------------------------


class InputModelError(ReproError, ValueError):
    """The primary-input statistics model is malformed or incompatible
    with the circuit (missing inputs, non-finite or unnormalized
    marginals, CPDs referencing unknown lines)."""


# ----------------------------------------------------------------------
# Backend compilation
# ----------------------------------------------------------------------


class CompileError(ReproError, RuntimeError):
    """A backend failed to build its compiled artifact.  The facade's
    fallback chain advances on this branch (and only this branch)."""


class CliqueBudgetExceeded(CompileError):
    """The triangulation produced a clique whose table would exceed the
    caller's state-space budget.  Raised *before* any table is
    materialized; callers fall back to segmentation (the ``"auto"``
    backend does this automatically)."""


class SegmentTooWide(CompileError):
    """The segment has too many inputs for support enumeration."""


class FallbackExhausted(CompileError):
    """Every backend in the facade's fallback chain failed to compile."""


class UnknownBackendError(ReproError, KeyError):
    """No backend is registered under the requested name."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable.
        return str(self.args[0]) if self.args else ""


# ----------------------------------------------------------------------
# Inference / artifacts
# ----------------------------------------------------------------------


class PropagationError(ReproError, RuntimeError):
    """Propagation on a compiled model produced an invalid belief state
    (zero total mass or non-finite values)."""


class ZeroBeliefError(PropagationError, ZeroDivisionError):
    """Normalizing a belief with zero total mass (impossible evidence or
    annihilated potentials).  Also a :class:`ZeroDivisionError`, which
    the pre-consolidation normalization code raised."""


class ConcurrentPropagationError(PropagationError):
    """Two threads entered one :class:`PropagationEngine` at the same
    time.  The engine's belief/message buffers are preallocated and
    mutated in place, so overlapping calls silently corrupt each
    other's results; the engine refuses instead of corrupting.  Give
    each thread its own engine -- ``repro.serve`` checks replicas out
    of a per-model pool for exactly this reason."""


class ArtifactSchemaError(ReproError, RuntimeError):
    """A serialized :class:`~repro.core.backend.base.CompiledModel` has
    a missing or incompatible schema tag and cannot be loaded."""


# ----------------------------------------------------------------------
# Performance history (`repro.perf`)
# ----------------------------------------------------------------------


class PerfProfileError(ReproError, ValueError):
    """A perf profile is malformed, unresolvable, or has an unsupported
    schema tag (store refs that match nothing land here too)."""


class PerfDiffError(ReproError, RuntimeError):
    """Two perf profiles (or benchmark reports) cannot be compared --
    different benchmark kinds, no common rows, or machine fingerprints
    that differ without ``force``.  The CLI maps this to exit code 2."""
