"""Dynamic power estimation on top of switching activity.

Switching activity is the circuit-dependent half of the CMOS dynamic
power equation ``P = 0.5 * Vdd^2 * f * sum_i C_i * sw_i``; this package
supplies the other half: a fanout-based load-capacitance model and the
aggregation, so the estimator's output turns into watts.
"""

from repro.power.model import (
    PowerReport,
    Technology,
    fanout_capacitances,
    power_from_activities,
)

__all__ = [
    "PowerReport",
    "Technology",
    "fanout_capacitances",
    "power_from_activities",
]
