"""Switched-capacitance dynamic power model.

``P_dyn = 0.5 * Vdd^2 * f_clk * sum_i C_i * sw_i`` where ``sw_i`` is
the switching activity of line ``i`` (transitions per cycle) and
``C_i`` its load capacitance.  The capacitance model is the standard
gate-level approximation: a per-fanout input capacitance plus a fixed
wire term, scaled by the technology node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.circuits.netlist import Circuit


@dataclass(frozen=True)
class Technology:
    """A minimal technology description for power estimation."""

    #: supply voltage in volts
    vdd: float = 1.8
    #: clock frequency in hertz
    clock_hz: float = 100e6
    #: input capacitance presented by one gate input, in farads
    gate_input_cap: float = 2e-15
    #: fixed wire capacitance per line, in farads
    wire_cap: float = 1e-15
    #: capacitance of a primary-output pin, in farads
    output_pin_cap: float = 10e-15

    def __post_init__(self):
        if self.vdd <= 0 or self.clock_hz <= 0:
            raise ValueError("vdd and clock_hz must be positive")
        if min(self.gate_input_cap, self.wire_cap, self.output_pin_cap) < 0:
            raise ValueError("capacitances must be non-negative")


#: A 180 nm-flavoured default, roughly matching the paper's era.
DEFAULT_TECHNOLOGY = Technology()


def fanout_capacitances(
    circuit: Circuit, technology: Technology = DEFAULT_TECHNOLOGY
) -> Dict[str, float]:
    """Load capacitance per line: fanout inputs + wire + output pins."""
    fanout = circuit.fanout()
    output_set = set(circuit.outputs)
    caps: Dict[str, float] = {}
    for line in circuit.lines:
        cap = technology.wire_cap
        cap += len(fanout[line]) * technology.gate_input_cap
        if line in output_set:
            cap += technology.output_pin_cap
        caps[line] = cap
    return caps


@dataclass
class PowerReport:
    """Per-line and total dynamic power."""

    #: dynamic power per line, in watts
    per_line: Dict[str, float]
    technology: Technology

    @property
    def total_watts(self) -> float:
        return float(sum(self.per_line.values()))

    def top_consumers(self, k: int = 10):
        """The k highest-power lines as (line, watts) pairs."""
        ranked = sorted(self.per_line.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:k]


def power_from_activities(
    circuit: Circuit,
    activities: Mapping[str, float],
    technology: Technology = DEFAULT_TECHNOLOGY,
    capacitances: Optional[Mapping[str, float]] = None,
) -> PowerReport:
    """Aggregate switching activities into dynamic power.

    Parameters
    ----------
    activities:
        Switching activity per line (e.g. from
        :class:`~repro.core.estimator.SwitchingEstimate`).
    capacitances:
        Per-line load caps; defaults to :func:`fanout_capacitances`.
    """
    caps = capacitances if capacitances is not None else fanout_capacitances(
        circuit, technology
    )
    factor = 0.5 * technology.vdd ** 2 * technology.clock_hz
    per_line = {}
    for line in circuit.lines:
        if line not in activities:
            raise KeyError(f"no switching activity for line {line!r}")
        activity = activities[line]
        if not 0.0 <= activity <= 1.0 + 1e-9:
            raise ValueError(f"activity for {line!r} out of range: {activity}")
        per_line[line] = factor * caps[line] * activity
    return PowerReport(per_line=per_line, technology=technology)
